// Package cascades implements a Cascades-style top-down query optimizer
// (Graefe [21]) with a memo, logical exploration, physical implementation
// rules, required/derived physical properties with enforcers, and the
// paper's three extensions for resource-aware planning: a resource context,
// partition exploration and partition optimization (Section 5.2).
package cascades

import "cleo/internal/plan"

// PartitionKind classifies how data is partitioned across containers.
type PartitionKind int

const (
	// AnyPartition means no particular partitioning (round-robin).
	AnyPartition PartitionKind = iota
	// HashPartition means hash-partitioned on Keys.
	HashPartition
	// SinglePartition means all data on one container.
	SinglePartition
)

// Partitioning is a physical data-distribution property.
type Partitioning struct {
	Kind PartitionKind
	Keys []plan.Column
}

// Satisfies reports whether a delivered partitioning meets a requirement.
// AnyPartition as a requirement is always met; hash requirements need the
// exact key set; singleton requires singleton.
func (p Partitioning) Satisfies(req Partitioning) bool {
	switch req.Kind {
	case AnyPartition:
		return true
	case SinglePartition:
		return p.Kind == SinglePartition
	case HashPartition:
		return p.Kind == HashPartition && sameKeys(p.Keys, req.Keys)
	default:
		return false
	}
}

// Ordering is a physical sort-order property (column list, major first).
type Ordering []plan.Column

// Satisfies reports whether a delivered ordering meets a requirement: the
// delivered order must have the required one as a prefix.
func (o Ordering) Satisfies(req Ordering) bool {
	if len(req) == 0 {
		return true
	}
	if len(o) < len(req) {
		return false
	}
	for i, k := range req {
		if o[i] != k {
			return false
		}
	}
	return true
}

// Props bundles the physical properties the optimizer tracks.
type Props struct {
	Part  Partitioning
	Order Ordering
}

// Satisfies reports whether delivered properties meet required ones.
func (p Props) Satisfies(req Props) bool {
	return p.Part.Satisfies(req.Part) && p.Order.Satisfies(req.Order)
}

// key renders the properties as a cache key.
func (p Props) key() string {
	s := ""
	switch p.Part.Kind {
	case AnyPartition:
		s = "any"
	case SinglePartition:
		s = "one"
	case HashPartition:
		s = "hash("
		for i, k := range p.Part.Keys {
			if i > 0 {
				s += ","
			}
			s += string(k)
		}
		s += ")"
	}
	s += "/ord("
	for i, k := range p.Order {
		if i > 0 {
			s += ","
		}
		s += string(k)
	}
	return s + ")"
}

func sameKeys(a, b []plan.Column) bool {
	if len(a) != len(b) {
		return false
	}
	// Key sets are tiny; quadratic set equality is fine and avoids sorting.
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
