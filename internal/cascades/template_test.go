package cascades

import (
	"fmt"
	"sync"
	"testing"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

// templateQueries covers every implementation rule: scans, filters,
// aggregates, joins (with commuted exploration), unions, sorts, top-n and
// UDF processors.
func templateQueries() []*plan.Logical {
	clicks := func() *plan.Logical { return plan.NewGet("clicks_d1", "clicks_") }
	return []*plan.Logical{
		simpleQuery(),
		joinQuery(),
		plan.NewOutput(plan.NewUnion(
			plan.NewAggregate(plan.NewSelect(clicks(), "market=us"), "user"),
			plan.NewAggregate(plan.NewSelect(clicks(), "market=eu"), "user"))),
		plan.NewOutput(plan.NewTopN(plan.NewAggregate(plan.NewProcess(clicks(), "extract"), "user"), 10, "score")),
	}
}

// TestTemplateHitMatchesFresh pins the core contract: a template-cached
// optimization returns bit-identical plans, costs and diagnostics to a
// fresh one, for the plain and resource-aware configurations and for
// sequential and parallel searches.
func TestTemplateHitMatchesFresh(t *testing.T) {
	cat := testCatalog()
	for _, ra := range []bool{false, true} {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("ra=%v/par=%d", ra, par), func(t *testing.T) {
				fresh := defaultOptimizer(cat)
				cached := defaultOptimizer(cat)
				cached.Templates = NewTemplateCache(0)
				if ra {
					for _, o := range []*Optimizer{fresh, cached} {
						o.ResourceAware = true
						o.Chooser = &SamplingChooser{Cost: o.Cost, Strategy: Geometric, SkipCoefficient: 2}
					}
				}
				fresh.Parallelism = par
				cached.Parallelism = par
				for qi, q := range templateQueries() {
					want, err := fresh.Optimize(q)
					if err != nil {
						t.Fatal(err)
					}
					miss, err := cached.Optimize(q)
					if err != nil {
						t.Fatal(err)
					}
					if miss.TemplateHit {
						t.Fatalf("query %d: first optimization reported a template hit", qi)
					}
					hit, err := cached.Optimize(q)
					if err != nil {
						t.Fatal(err)
					}
					if !hit.TemplateHit {
						t.Fatalf("query %d: second optimization missed the template cache", qi)
					}
					for name, got := range map[string]*Result{"miss": miss, "hit": hit} {
						if got.Plan.String() != want.Plan.String() {
							t.Fatalf("query %d (%s): plans differ:\nfresh:  %s\ncached: %s",
								qi, name, want.Plan, got.Plan)
						}
						if got.Cost != want.Cost {
							t.Fatalf("query %d (%s): costs differ: %v vs %v", qi, name, want.Cost, got.Cost)
						}
						if got.MemoGroups != want.MemoGroups || got.ModelLookups != want.ModelLookups {
							t.Fatalf("query %d (%s): diagnostics differ: groups %d/%d lookups %d/%d",
								qi, name, want.MemoGroups, got.MemoGroups, want.ModelLookups, got.ModelLookups)
						}
					}
				}
			})
		}
	}
}

// TestTemplateHitVariesInstanceParameters proves the snapshot is truly
// parameter-independent: instances with different job seeds share the
// template, and each still matches its own fresh optimization (statistics
// drift is re-annotated per instance, never cached).
func TestTemplateHitVariesInstanceParameters(t *testing.T) {
	cat := testCatalog()
	cached := defaultOptimizer(cat)
	cached.Templates = NewTemplateCache(0)
	q := joinQuery()
	for i, seed := range []int64{1, 2, 99} {
		fresh := defaultOptimizer(cat)
		fresh.JobSeed = seed
		cached.JobSeed = seed
		want, err := fresh.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !got.TemplateHit {
			t.Fatalf("seed %d: expected a template hit", seed)
		}
		if got.Plan.String() != want.Plan.String() || got.Cost != want.Cost {
			t.Fatalf("seed %d: cached instance diverged from fresh:\nfresh:  %s (%v)\ncached: %s (%v)",
				seed, want.Plan, want.Cost, got.Plan, got.Cost)
		}
	}
	// JobSeed is not part of the key: three instances, one entry.
	if st := cached.Templates.Stats(); st.TemplateEntries != 1 || st.TemplateHits != 2 || st.TemplateMisses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 2 hits, 1 miss", st)
	}
}

// TestTemplateKeyFences pins the invalidation semantics that live in the
// cache key: a statistics update, a model change, a partition-cap change
// or a parallelism change must miss (and re-explore) rather than reuse.
func TestTemplateKeyFences(t *testing.T) {
	q := simpleQuery()
	steps := []struct {
		name   string
		mutate func(o *Optimizer)
	}{
		{"stats update", func(o *Optimizer) {
			ts := mustTable(o, "clicks_d1")
			ts.Rows *= 2
			o.Catalog.PutTable("clicks_d1", ts)
		}},
		{"max partitions", func(o *Optimizer) { o.MaxPartitions = 500 }},
		{"parallelism", func(o *Optimizer) { o.Parallelism = 2 }},
		// The snapshot IS the exploration result: a template explored under
		// one rule set (or memo budget) must never serve a search configured
		// with another.
		{"rule set", func(o *Optimizer) { o.Rules = EmptyRules() }},
		{"rule order", func(o *Optimizer) { o.Rules = NewRuleSet(joinAssoc{}, joinExchange{}) }},
		{"memo budget", func(o *Optimizer) { o.MemoBudget = 64 }},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			o := defaultOptimizer(testCatalog())
			o.Parallelism = 1 // pin so the parallelism mutation below differs
			o.Templates = NewTemplateCache(0)
			for i := 0; i < 2; i++ {
				if _, err := o.Optimize(q); err != nil {
					t.Fatal(err)
				}
			}
			if st := o.Templates.Stats(); st.TemplateHits != 1 {
				t.Fatalf("warmup: stats = %+v, want 1 hit", st)
			}
			step.mutate(o)
			res, err := o.Optimize(q)
			if err != nil {
				t.Fatal(err)
			}
			if res.TemplateHit {
				t.Fatalf("optimization after %s reused a stale template", step.name)
			}
			if st := o.Templates.Stats(); st.TemplateMisses != 2 {
				t.Fatalf("after %s: stats = %+v, want 2 misses", step.name, st)
			}
		})
	}
}

// mustTable re-reads a table's stats so a test can re-register them
// unchanged (the epoch advances regardless of the value).
func mustTable(o *Optimizer, name string) stats.TableStats {
	v, ok := o.Catalog.Table(name)
	if !ok {
		panic("missing table " + name)
	}
	return v
}

// TestTemplateCacheLRUAndInvalidate exercises capacity eviction and the
// wholesale purge.
func TestTemplateCacheLRUAndInvalidate(t *testing.T) {
	c := NewTemplateCache(2)
	q := simpleQuery()
	keys := []TemplateKey{{Sig: 1}, {Sig: 2}, {Sig: 3}}
	for _, k := range keys {
		c.Put(k, &Template{memo: NewMemo(q), root: q.Clone()})
	}
	if _, ok := c.Get(keys[0], q); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := c.Get(keys[2], q); !ok {
		t.Fatal("newest entry evicted")
	}
	// Get(keys[2]) made it most recent; inserting a fourth key must evict
	// keys[1], the least recently used survivor.
	c.Put(TemplateKey{Sig: 4}, &Template{memo: NewMemo(q), root: q.Clone()})
	if _, ok := c.Get(keys[1], q); ok {
		t.Fatal("LRU evicted the recently used entry instead of the stale one")
	}
	c.Invalidate()
	st := c.Stats()
	if st.TemplateEntries != 0 || st.TemplateInvalidations != 1 {
		t.Fatalf("after Invalidate: stats = %+v", st)
	}
}

// TestTemplateSignatureCollisionDegradesToMiss pins the collision defense:
// a cache slot holding a *different* logical plan under the same key (a
// 64-bit signature collision) must read as a miss, never serve the other
// plan's memo.
func TestTemplateSignatureCollisionDegradesToMiss(t *testing.T) {
	c := NewTemplateCache(4)
	a, b := simpleQuery(), joinQuery()
	k := TemplateKey{Sig: 42} // pretend a and b collide on this key
	c.Put(k, &Template{memo: NewMemo(a), root: a.Clone()})
	if _, ok := c.Get(k, b); ok {
		t.Fatal("colliding plan was served another template's memo")
	}
	if tmpl, ok := c.Get(k, a); !ok || tmpl == nil {
		t.Fatal("the plan that owns the slot no longer hits")
	}
	st := c.Stats()
	if st.TemplateHits != 1 || st.TemplateMisses != 1 {
		t.Fatalf("stats = %+v, want 1 hit (owner) and 1 miss (collider)", st)
	}
}

// TestTemplateConcurrentUse hammers one shared cache from many goroutines
// (run under -race): all results must match the sequential fresh answer.
func TestTemplateConcurrentUse(t *testing.T) {
	cat := testCatalog()
	queries := templateQueries()
	want := make([]*Result, len(queries))
	fresh := defaultOptimizer(cat)
	for i, q := range queries {
		r, err := fresh.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	shared := defaultOptimizer(cat)
	shared.Parallelism = 4
	shared.Templates = NewTemplateCache(0)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				res, err := shared.Optimize(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Plan.String() != want[i].Plan.String() || res.Cost != want[i].Cost {
					errs <- fmt.Errorf("query %d: concurrent cached result diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
