package cascades

import (
	"testing"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

func testCatalog() *stats.Catalog {
	c := stats.NewCatalog(5)
	c.PutTable("clicks_d1", stats.TableStats{Rows: 2e7, RowLength: 120})
	c.PutTable("users_d1", stats.TableStats{Rows: 5e5, RowLength: 80})
	c.PutTable("parts_d1", stats.TableStats{
		Rows: 1e6, RowLength: 100, PartitionedOn: "pkey", Partitions: 100,
	})
	return c
}

func defaultOptimizer(c *stats.Catalog) *Optimizer {
	return &Optimizer{
		Catalog:       c,
		Cost:          costmodel.Tuned{},
		MaxPartitions: 3000,
		JobSeed:       1,
	}
}

func resourceAwareOptimizer(c *stats.Catalog) *Optimizer {
	o := defaultOptimizer(c)
	o.ResourceAware = true
	o.Chooser = &SamplingChooser{Cost: o.Cost, Strategy: Geometric, SkipCoefficient: 2}
	return o
}

func simpleQuery() *plan.Logical {
	g := plan.NewGet("clicks_d1", "clicks_")
	f := plan.NewSelect(g, "market=us")
	a := plan.NewAggregate(f, "user")
	return plan.NewOutput(a)
}

func joinQuery() *plan.Logical {
	l := plan.NewSelect(plan.NewGet("clicks_d1", "clicks_"), "recent")
	r := plan.NewGet("users_d1", "users_")
	j := plan.NewJoin(l, r, "clicks.user=users.id", "user")
	a := plan.NewAggregate(j, "region")
	s := plan.NewSort(a, "region")
	return plan.NewOutput(s)
}

func TestOptimizeSimpleQuery(t *testing.T) {
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(simpleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Cost <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// The plan must contain exactly one aggregation path and an exchange
	// enforcing hash partitioning for it (or partial+final aggregation).
	sum := plan.Summarize(res.Plan)
	aggs := sum.Operators["HashAggregate"] + sum.Operators["StreamAggregate"]
	if aggs < 1 {
		t.Fatalf("no aggregate in plan: %v", sum.Operators)
	}
	if sum.Operators["Exchange"] < 1 {
		t.Fatalf("no exchange enforcer: %v", sum.Operators)
	}
	// Every operator must carry stats, partitions and a cost.
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Partitions < 1 {
			t.Errorf("%v partitions = %d", n.Op, n.Partitions)
		}
		if n.Stats.EstCard <= 0 {
			t.Errorf("%v est card = %v", n.Op, n.Stats.EstCard)
		}
		if n.ExclusiveCostEst < 0 {
			t.Errorf("%v cost = %v", n.Op, n.ExclusiveCostEst)
		}
	})
}

func TestOptimizeJoinQuery(t *testing.T) {
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	sum := plan.Summarize(res.Plan)
	joins := sum.Operators["HashJoin"] + sum.Operators["MergeJoin"]
	if joins != 1 {
		t.Fatalf("joins = %d: %v", joins, sum.Operators)
	}
	// Join children must agree on partition count.
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Op == plan.PHashJoin || n.Op == plan.PMergeJoin {
			if n.Children[0].Partitions != n.Children[1].Partitions {
				t.Errorf("join children partitions differ: %d vs %d",
					n.Children[0].Partitions, n.Children[1].Partitions)
			}
			if n.Partitions != n.Children[0].Partitions {
				t.Errorf("join partitions %d != children %d", n.Partitions, n.Children[0].Partitions)
			}
		}
	})
}

func TestSortRequirementSatisfied(t *testing.T) {
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	// The query sorts by region after aggregating by region; the plan must
	// produce that ordering via a Sort or a stream aggregate.
	sum := plan.Summarize(res.Plan)
	if sum.Operators["Sort"] == 0 && sum.Operators["StreamAggregate"] == 0 {
		t.Fatalf("no ordering producer in plan: %v", sum.Operators)
	}
}

func TestPrePartitionedInputDeliversPartitioning(t *testing.T) {
	c := testCatalog()
	// Join parts (pre-partitioned on pkey) with clicks on pkey.
	l := plan.NewGet("parts_d1", "parts_")
	r := plan.NewGet("clicks_d1", "clicks_")
	j := plan.NewJoin(l, r, "p.pkey=c.pkey", "pkey")
	q := plan.NewOutput(j)

	o := resourceAwareOptimizer(c)
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// The parts side should not be re-shuffled when the join adopts its
	// stored partition count (100).
	var exchangesOverParts int
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Op == plan.PExchange && len(n.Children) == 1 && n.Children[0].Table == "parts_d1" {
			exchangesOverParts++
		}
	})
	if exchangesOverParts != 0 {
		t.Errorf("parts side re-shuffled %d times despite matching layout", exchangesOverParts)
	}
	var join *plan.Physical
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Op == plan.PHashJoin || n.Op == plan.PMergeJoin {
			join = n
		}
	})
	if join == nil {
		t.Fatal("no join in plan")
	}
	if join.Partitions != 100 {
		t.Errorf("join partitions = %d, want 100 (stored layout)", join.Partitions)
	}
}

func TestResourceAwareUsesLookups(t *testing.T) {
	o := resourceAwareOptimizer(testCatalog())
	res, err := o.Optimize(simpleQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelLookups == 0 {
		t.Fatal("resource-aware optimization should spend model look-ups")
	}
}

func TestResourceAwareRequiresChooser(t *testing.T) {
	o := defaultOptimizer(testCatalog())
	o.ResourceAware = true
	if _, err := o.Optimize(simpleQuery()); err == nil {
		t.Fatal("expected error without chooser")
	}
}

func TestMemoExploreNeverCommutesJoins(t *testing.T) {
	// Join commutativity is NOT an equivalence in this engine: joins emit
	// the left side's rows, so swapping inputs changes the output. The
	// single binary join of joinQuery admits no other reordering either,
	// so its join group must stay at exactly one expression.
	m := NewMemo(joinQuery())
	m.ExploreAll(DefaultRules(), 0)
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		if len(g.Exprs) > 0 && g.Exprs[0].Op == plan.LJoin {
			if len(g.Exprs) != 1 {
				t.Fatalf("join group has %d exprs, want 1", len(g.Exprs))
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no join group in memo")
	}
}

func TestPropsSatisfaction(t *testing.T) {
	hashUK := Partitioning{Kind: HashPartition, Keys: []plan.Column{"u", "k"}}
	hashKU := Partitioning{Kind: HashPartition, Keys: []plan.Column{"k", "u"}}
	if !hashUK.Satisfies(hashKU) {
		t.Fatal("hash partitioning should be key-set based")
	}
	if (Partitioning{Kind: AnyPartition}).Satisfies(hashUK) {
		t.Fatal("any should not satisfy hash")
	}
	if !(Partitioning{Kind: SinglePartition}).Satisfies(Partitioning{Kind: AnyPartition}) {
		t.Fatal("anything satisfies any")
	}
	if !(Ordering{"a", "b"}).Satisfies(Ordering{"a"}) {
		t.Fatal("prefix ordering should satisfy")
	}
	if (Ordering{"b", "a"}).Satisfies(Ordering{"a"}) {
		t.Fatal("wrong prefix should not satisfy")
	}
}

func TestSamplingChooserCandidates(t *testing.T) {
	geo := &SamplingChooser{Strategy: Geometric, SkipCoefficient: 1}
	c := geo.Candidates(100)
	if c[0] != 1 || c[1] != 2 {
		t.Fatalf("geometric candidates start %v", c[:2])
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatal("geometric candidates must increase")
		}
	}
	uni := &SamplingChooser{Strategy: Uniform, Samples: 5}
	u := uni.Candidates(100)
	if len(u) != 5 || u[0] != 1 || u[len(u)-1] != 100 {
		t.Fatalf("uniform candidates = %v", u)
	}
	rnd := &SamplingChooser{Strategy: Random, Samples: 10, Seed: 3}
	r := rnd.Candidates(100)
	if len(r) != 10 {
		t.Fatalf("random candidates = %v", r)
	}
	ex := &SamplingChooser{Strategy: Exhaustive}
	if len(ex.Candidates(50)) != 50 {
		t.Fatal("exhaustive should probe all")
	}
}

func TestChooserFindsCheaperCount(t *testing.T) {
	c := testCatalog()
	// Build a stage: Exchange + HashAggregate whose tuned cost includes a
	// per-partition overhead, so some interior count is optimal.
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Table = "clicks_d1"
	leaf.InputTemplate = "clicks_"
	leaf.Partitions = 50
	if err := c.AnnotateOne(leaf, 1); err != nil {
		t.Fatal(err)
	}
	x := plan.NewPhysical(plan.PExchange, leaf)
	x.Keys = []plan.Column{"k"}
	x.Partitions = 1
	if err := c.AnnotateOne(x, 1); err != nil {
		t.Fatal(err)
	}
	agg := plan.NewPhysical(plan.PHashAggregate, x)
	agg.Keys = []plan.Column{"k"}
	agg.Partitions = 1
	if err := c.AnnotateOne(agg, 1); err != nil {
		t.Fatal(err)
	}

	chooser := &SamplingChooser{Cost: costmodel.Tuned{}, Strategy: Geometric, SkipCoefficient: 4}
	ops := []*plan.Physical{x, agg}
	p, lookups := chooser.ChooseStagePartitions(ops, 3000)
	if lookups == 0 {
		t.Fatal("no lookups spent")
	}
	if p <= 1 || p >= 3000 {
		t.Fatalf("chosen count %d should be interior", p)
	}
	// Partitions must be restored after probing.
	if x.Partitions != 1 || agg.Partitions != 1 {
		t.Fatal("chooser mutated the stage")
	}
	// The chosen count must be at least as cheap as the probes around it.
	at := func(pp int) float64 { return StageCostAt(costmodel.Tuned{}, ops, pp) }
	if at(p) > at(1) || at(p) > at(3000) {
		t.Fatalf("chosen %d not better than extremes", p)
	}
}

func TestOptimizerDeterminism(t *testing.T) {
	c := testCatalog()
	r1, err := defaultOptimizer(c).Optimize(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := defaultOptimizer(c).Optimize(joinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan.String() != r2.Plan.String() {
		t.Fatalf("non-deterministic plans:\n%s\n%s", r1.Plan, r2.Plan)
	}
	if r1.Cost != r2.Cost {
		t.Fatal("non-deterministic costs")
	}
}

func TestGlobalAggregateGoesSingleton(t *testing.T) {
	g := plan.NewGet("users_d1", "users_")
	a := plan.NewAggregate(g) // no keys: global aggregate
	q := plan.NewOutput(a)
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	var agg *plan.Physical
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Op == plan.PHashAggregate || n.Op == plan.PStreamAggregate {
			agg = n
		}
	})
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if agg.Partitions != 1 {
		t.Fatalf("global aggregate partitions = %d, want 1", agg.Partitions)
	}
}

func TestUnionAndTopN(t *testing.T) {
	a := plan.NewGet("users_d1", "users_")
	b := plan.NewGet("users_d1", "users_")
	u := plan.NewUnion(a, b)
	top := plan.NewTopN(u, 10, "score")
	q := plan.NewOutput(top)
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	sum := plan.Summarize(res.Plan)
	if sum.Operators["UnionAll"] != 1 || sum.Operators["TopN"] != 1 {
		t.Fatalf("operators = %v", sum.Operators)
	}
	if sum.Operators["Sort"] < 1 {
		t.Fatalf("top-n should force a sort: %v", sum.Operators)
	}
}

func TestProcessUDFPlanned(t *testing.T) {
	g := plan.NewGet("clicks_d1", "clicks_")
	p := plan.NewProcess(g, "extractFacts")
	q := plan.NewOutput(p)
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	res.Plan.Walk(func(n *plan.Physical) {
		if n.Op == plan.PProcess && n.UDF == "extractFacts" {
			found = true
		}
	})
	if !found {
		t.Fatal("UDF lost during planning")
	}
}
