package cascades

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/costmodel"
	"cleo/internal/obs"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

// Coster predicts the exclusive latency of one physical operator. Both the
// hand-crafted models (costmodel.Default, costmodel.Tuned) and CLEO's
// learned combined model implement it; swapping the implementation is the
// paper's "minimally invasive" retrofit (step 10 in Figure 8a).
//
// Costers must be safe for concurrent use: a parallel search prices
// candidates from many worker goroutines at once.
type Coster interface {
	Name() string
	OperatorCost(n *plan.Physical) float64
}

// BatchCoster is an optional Coster upgrade: implementations price a whole
// slice of operators in one call, writing len(ops) costs into out. The
// optimizer's partition exploration materializes every candidate
// partition-count variant of a stage and prices them in one CostBatch call
// instead of counts × operators scalar calls, and each implementation rule
// prices its full candidate set the same way; costers detect-upgrade via
// type assertion, so scalar-only models (costmodel.Default, costmodel.Tuned)
// keep working unchanged. Batched costs must equal scalar OperatorCost
// results row for row.
type BatchCoster interface {
	Coster
	CostBatch(ops []*plan.Physical, out []float64)
}

// costBatch prices ops into out, taking the batch path when the coster has
// one and falling back to operator-at-a-time calls otherwise.
func costBatch(c Coster, ops []*plan.Physical, out []float64) {
	if bc, ok := c.(BatchCoster); ok {
		bc.CostBatch(ops, out)
		return
	}
	for i, op := range ops {
		out[i] = c.OperatorCost(op)
	}
}

// PartitionChooser performs the paper's partition optimization (step 9 in
// Figure 8a): given the operators of one completed stage (ops[0] is the
// partitioning operator), pick the stage-wide partition count that
// minimizes total stage cost. It returns the chosen count and the number
// of cost-model look-ups spent (Figure 8c's metric). Implementations must
// be safe for concurrent use.
type PartitionChooser interface {
	ChooseStagePartitions(ops []*plan.Physical, maxPartitions int) (partitions, lookups int)
}

// Optimizer is the Cascades-style planner. It is pure configuration: all
// per-run state lives in a search created by Optimize, so one Optimizer
// value may be shared and its Optimize/OptimizeAll methods called from many
// goroutines concurrently. Optimize never writes the receiver — defaults
// (MaxPartitions, Parallelism) are resolved into locals per run.
type Optimizer struct {
	// Catalog supplies statistics; required.
	Catalog *stats.Catalog
	// Cost is the cost model invoked in Optimize Inputs; required.
	Cost Coster
	// MaxPartitions caps per-stage parallelism (default 3000).
	MaxPartitions int
	// ResourceAware enables partition exploration/optimization with
	// Chooser. When false, partition counts come from the default local
	// heuristic (costmodel.DerivePartitions), as in stock SCOPE.
	ResourceAware bool
	// Chooser performs partition optimization; required if ResourceAware.
	Chooser PartitionChooser
	// JobSeed drives per-instance statistics drift during annotation.
	JobSeed int64
	// Rules is the transformation-rule set exploration applies before the
	// costed search (nil = DefaultRules()). EmptyRules() disables
	// exploration, pinning the search to the submitted plan shape.
	Rules *RuleSet
	// MemoBudget caps exploration growth in memo groups
	// (0 = DefaultMemoBudget).
	MemoBudget int
	// Parallelism bounds the worker goroutines one search (or one
	// OptimizeAll batch) fans group-optimization tasks across; 0 means
	// GOMAXPROCS. At 1 the search runs fully inline — no goroutines, no
	// channels — and parallel runs produce plans cost-identical to that
	// sequential search (deterministic tie-breaking).
	Parallelism int
	// Templates, when non-nil, reuses memo snapshots across recurring
	// instances of the same logical plan: a hit skips copy-in and logical
	// exploration and re-runs only the costed half of the search, so the
	// chosen plan is bit-identical to an uncached optimization. A miss
	// publishes the finished search's memo for later instances.
	Templates *TemplateCache
	// Metrics, when non-nil, records per-search latency and phase timings
	// into shared instruments (see NewSearchMetrics). Nil disables every
	// observability hook down to a single pointer check per site.
	Metrics *SearchMetrics
	// Trace, when non-nil, makes this run emit an EXPLAIN ANALYZE-style
	// span tree (and turns on fine-grained phase stamping). Per-run state:
	// set it on a per-request Optimizer value, not a shared one.
	Trace *obs.Trace
	// TraceParent is the parent span for this run's spans (0 = root).
	TraceParent obs.SpanID
}

// Result reports one optimization run.
type Result struct {
	// Plan is the chosen physical plan, annotated with estimated stats,
	// partition counts and per-operator estimated costs.
	Plan *plan.Physical
	// Cost is the plan's total predicted cost.
	Cost float64
	// MemoGroups is the memo size, for diagnostics.
	MemoGroups int
	// ModelLookups counts cost-model invocations during partition
	// exploration (0 when not resource-aware).
	ModelLookups int
	// TemplateHit reports whether this run reused a cached memo template
	// (always false without Optimizer.Templates).
	TemplateHit bool
	// RuleFires counts the memo expressions each transformation rule
	// inserted during this run's exploration. It is nil on template hits:
	// the reused snapshot was explored by the run that published it.
	RuleFires map[string]uint64
}

// parallelism resolves the effective worker-pool width.
func (o *Optimizer) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// newSem builds the shared worker-pool semaphore for one search (or one
// OptimizeAll batch). The caller's goroutine is the first worker, so the
// semaphore holds Parallelism-1 extra slots; nil means "run everything
// inline".
func (o *Optimizer) newSem() chan struct{} {
	par := o.parallelism()
	if par <= 1 {
		return nil
	}
	return make(chan struct{}, par-1)
}

// validate checks required configuration once per run.
func (o *Optimizer) validate() error {
	if o.Catalog == nil || o.Cost == nil {
		return fmt.Errorf("cascades: Catalog and Cost are required")
	}
	if o.ResourceAware && o.Chooser == nil {
		return fmt.Errorf("cascades: ResourceAware requires a Chooser")
	}
	return nil
}

// Optimize plans the logical query and returns the best physical plan.
func (o *Optimizer) Optimize(root *plan.Logical) (*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o.optimizeOne(o.newSem(), root, false)
}

// ruleSet resolves the effective transformation-rule set.
func (o *Optimizer) ruleSet() *RuleSet {
	if o.Rules != nil {
		return o.Rules
	}
	return DefaultRules()
}

// memoBudget resolves the effective exploration budget.
func (o *Optimizer) memoBudget() int {
	if o.MemoBudget > 0 {
		return o.MemoBudget
	}
	return DefaultMemoBudget
}

// templateKey derives the template-cache slot for one optimization of root.
func (o *Optimizer) templateKey(root *plan.Logical) TemplateKey {
	return TemplateKey{
		Sig:           plan.LogicalSignature(root),
		CatalogEpoch:  o.Catalog.Epoch(),
		MaxPartitions: o.maxPartitions(),
		Parallelism:   o.parallelism(),
		ResourceAware: o.ResourceAware,
		Model:         costerIdentity(o.Cost),
		Rules:         fmt.Sprintf("%s@%d", o.ruleSet().Identity(), o.memoBudget()),
	}
}

// optimizeOne runs one query's search, reusing a memo template when the
// cache holds one for this (plan, configuration, model, stats-epoch) key
// and publishing the finished memo otherwise. The snapshot only ever
// short-circuits copy-in and logical exploration — both pure functions of
// the logical plan — so cached and fresh searches visit identical
// expression sets in identical order and return bit-identical plans.
// held reports whether the calling goroutine occupies a pool slot (an
// OptimizeAll query spawned onto the shared pool does).
func (o *Optimizer) optimizeOne(sem chan struct{}, root *plan.Logical, held bool) (*Result, error) {
	s := o.newSearch(sem)
	var key TemplateKey
	if o.Templates != nil {
		key = o.templateKey(root)
		if tmpl, ok := o.Templates.Get(key, root); ok {
			s.memo = tmpl.memo
			s.templateHit = true
		}
	}
	res, err := s.run(root, held)
	if err != nil {
		return nil, err
	}
	if o.Templates != nil && !s.templateHit {
		// ExploreAll ran the rules to fixpoint before the search, so the
		// memo is immutable from here on. The root is cloned so a caller
		// mutating its query afterwards cannot skew verification.
		o.Templates.Put(key, &Template{memo: s.memo, root: root.Clone()})
	}
	return res, nil
}

// OptimizeAll plans several independent queries through one shared worker
// pool: each query gets its own memoized search, but their group tasks
// compete for the same Parallelism slots, so a serving instance can push a
// batch of queries through the optimizer at full machine width. results[i]
// corresponds to queries[i] and each is identical to a standalone
// Optimize(queries[i]) call; on error the first failure (in query order) is
// returned.
func (o *Optimizer) OptimizeAll(queries []*plan.Logical) ([]*Result, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	sem := o.newSem()
	results := make([]*Result, len(queries))
	fns := make([]func(bool) error, len(queries))
	for i, q := range queries {
		fns[i] = func(spawned bool) error {
			res, err := o.optimizeOne(sem, q, spawned)
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		}
	}
	if err := fanOut(sem, fns...); err != nil {
		return nil, err
	}
	return results, nil
}

// search is the per-run state of one query optimization: resolved
// configuration, the memo, the concurrency-safe task table, and the shared
// worker-pool semaphore. Keeping it off the Optimizer makes a shared
// Optimizer config race-free to reuse.
type search struct {
	catalog       *stats.Catalog
	cost          Coster
	chooser       PartitionChooser
	resourceAware bool
	maxPartitions int
	jobSeed       int64
	rules         *RuleSet
	memoBudget    int

	// memo is built and explored by run, unless a template hit pre-seeded
	// a shared, fully explored snapshot (templateHit). A shared memo is
	// read-only: ExploreAll on it is a no-op and Exprs reads need no
	// ordering.
	memo        *Memo
	templateHit bool
	ruleFires   map[string]uint64

	// table memoizes (group, required-props) tasks as futures: the first
	// goroutine to claim a key computes it, duplicates wait on the
	// in-flight future instead of re-searching.
	mu    sync.Mutex
	table map[taskKey]*future

	// sem is the shared bounded worker pool (nil = fully inline).
	sem chan struct{}

	// obs is the run's observability state; nil when the run is neither
	// metered nor traced, so hooks cost one pointer check.
	obs *searchObs

	lookups atomic.Int64
}

// maxPartitions resolves the effective per-stage parallelism cap.
func (o *Optimizer) maxPartitions() int {
	if o.MaxPartitions > 0 {
		return o.MaxPartitions
	}
	return 3000
}

func (o *Optimizer) newSearch(sem chan struct{}) *search {
	s := &search{
		catalog:       o.Catalog,
		cost:          o.Cost,
		chooser:       o.Chooser,
		resourceAware: o.ResourceAware,
		maxPartitions: o.maxPartitions(),
		jobSeed:       o.JobSeed,
		rules:         o.ruleSet(),
		memoBudget:    o.memoBudget(),
		table:         map[taskKey]*future{},
		sem:           sem,
	}
	if o.Metrics != nil || o.Trace != nil {
		s.obs = &searchObs{metrics: o.Metrics, trace: o.Trace, parent: o.TraceParent}
	}
	return s
}

func (s *search) run(root *plan.Logical, held bool) (*Result, error) {
	if so := s.obs; so != nil {
		so.start = time.Now()
		so.startNs = so.trace.Now()
	}
	if s.memo == nil {
		if so := s.obs; so != nil {
			t0 := time.Now()
			s.memo = NewMemo(root)
			so.add(phaseCopyIn, time.Since(t0))
			t0 = time.Now()
			s.ruleFires = s.memo.ExploreAll(s.rules, s.memoBudget)
			so.add(phaseExplore, time.Since(t0))
		} else {
			s.memo = NewMemo(root)
			s.ruleFires = s.memo.ExploreAll(s.rules, s.memoBudget)
		}
		if so := s.obs; so != nil && so.metrics != nil {
			for name, n := range s.ruleFires {
				if ctr := so.metrics.RuleFires[name]; ctr != nil {
					ctr.Add(n)
				}
			}
		}
	}
	res, err := s.optimizeGroup(s.memo.Root(), Props{}, held)
	if err != nil {
		return nil, err
	}
	best := res.root.Clone()
	// The topmost stage never saw a boundary above it; finalize it.
	s.optimizeTopStage(best)
	cost := best.TotalCostEst()
	result := &Result{
		Plan:         best,
		Cost:         cost,
		MemoGroups:   s.memo.NumGroups(),
		ModelLookups: int(s.lookups.Load()),
		TemplateHit:  s.templateHit,
		RuleFires:    s.ruleFires,
	}
	if s.obs != nil {
		s.obs.finish(result)
	}
	return result, nil
}

type taskKey struct {
	group GroupID
	props string
}

// searchResult is the memoized best plan for (group, required props). Once
// published through a future it is immutable: consumers Clone the root
// before mutating.
type searchResult struct {
	root      *plan.Physical
	cost      float64
	delivered Props
}

// future is one in-flight or completed (group, props) task. res/err are
// written exactly once, before done closes.
type future struct {
	done chan struct{}
	res  *searchResult
	err  error
}

// fanOut runs fns, spawning each onto the bounded worker pool when a slot
// is free and running it inline on the caller's goroutine otherwise (the
// last one always runs inline — the caller is a worker too). The
// non-blocking acquire means a saturated pool degrades to sequential
// execution instead of deadlocking, even though tasks recursively fan out.
// It returns the first error in argument order.
//
// Each fn is told how it runs: spawned fns execute on a pool goroutine
// that occupies a semaphore slot for the duration of the call, inline fns
// (spawned == false) run on the caller's goroutine and hold no slot of
// their own. The flag flows down the search so a task that parks on an
// in-flight future can lend its slot back to the pool while it waits
// (see optimizeGroup); an inline fn must instead inherit the caller's
// slot-holding state, which the call sites capture in their closures.
//
// A panic in a spawned worker is captured and re-raised on the caller's
// goroutine after every worker finishes — exactly where inline execution
// would have panicked — so a panicking cost model unwinds the request that
// triggered it (where net/http's per-connection recover can contain it)
// instead of crashing the whole process from a bare goroutine.
func fanOut(sem chan struct{}, fns ...func(spawned bool) error) error {
	if len(fns) == 0 {
		return nil
	}
	if sem == nil {
		for _, fn := range fns {
			if err := fn(false); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(fns))
	panics := make([]any, len(fns))
	var wg sync.WaitGroup
	// Fail fast like the sequential path: once any task fails — inline or
	// spawned — the batch's outcome is decided, so tasks not yet started
	// stay unstarted (in-flight workers still run to completion).
	var failed atomic.Bool
	func() {
		// Wait for spawned workers even when an inline call panics, so no
		// worker outlives this frame or its result slices.
		defer wg.Wait()
		for i, fn := range fns[:len(fns)-1] {
			if failed.Load() {
				return
			}
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					defer func() {
						if panics[i] = recover(); panics[i] != nil {
							failed.Store(true)
						}
					}()
					if errs[i] = fn(true); errs[i] != nil {
						failed.Store(true)
					}
				}()
			default:
				if errs[i] = fn(false); errs[i] != nil {
					failed.Store(true)
				}
			}
		}
		if !failed.Load() {
			errs[len(fns)-1] = fns[len(fns)-1](false)
		}
	}()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// childTask names one child optimization an implementation rule needs:
// optimize (id, req) into *dst.
type childTask struct {
	dst **searchResult
	id  GroupID
	req Props
}

// optimizeChildren runs a rule's independent child optimizations. With a
// worker pool they fan out through fanOut; inline mode (sem == nil — the
// sequential default) runs them directly with no closures or goroutine
// scaffolding, keeping the hot path allocation-lean. held is the calling
// goroutine's slot-holding state, inherited by inline-executed tasks.
func (s *search) optimizeChildren(tasks []childTask, held bool) error {
	if s.sem == nil {
		for i := range tasks {
			var err error
			if *tasks[i].dst, err = s.optimizeGroup(tasks[i].id, tasks[i].req, false); err != nil {
				return err
			}
		}
		return nil
	}
	fns := make([]func(bool) error, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		fns[i] = func(spawned bool) error {
			var err error
			*t.dst, err = s.optimizeGroup(t.id, t.req, spawned || held)
			return err
		}
	}
	return fanOut(s.sem, fns...)
}

// optimizeGroup implements the Optimize Group / Optimize Expression tasks:
// it returns the cheapest physical plan for the group meeting the required
// properties, memoized per (group, props). Concurrent requests for the same
// key dedupe by waiting on the in-flight future; group dependencies follow
// the memo DAG, so future waits cannot cycle.
//
// held reports whether the calling goroutine occupies a pool slot (it runs
// a spawned fanOut task somewhere up its stack). A held waiter parked on an
// in-flight future lends its slot back to the pool for the duration of the
// wait — otherwise dedup-heavy shapes at small Parallelism idle pool
// capacity on goroutines that are doing nothing but waiting — and
// re-acquires before continuing. Inline callers hold no slot and wait as
// before. Re-acquisition cannot deadlock: a goroutine blocked here holds no
// slot, so a full semaphore means some worker is actively running, and
// every running worker eventually releases (it finishes, or parks and lends
// in turn).
func (s *search) optimizeGroup(id GroupID, req Props, held bool) (*searchResult, error) {
	key := taskKey{group: id, props: req.key()}
	if s.sem == nil {
		// Inline mode: the whole search runs on one goroutine, so the
		// table needs neither the mutex nor per-task wait channels.
		if f, ok := s.table[key]; ok {
			return f.res, f.err
		}
		f := &future{}
		f.res, f.err = s.searchGroup(id, req, false)
		s.table[key] = f
		return f.res, f.err
	}
	s.mu.Lock()
	if f, ok := s.table[key]; ok {
		s.mu.Unlock()
		if held {
			// Lend only if the task is genuinely in flight: a resolved
			// future is a free memo hit, and giving the slot up just to
			// re-queue for it behind a saturated pool would turn that hit
			// into a stall.
			select {
			case <-f.done:
			default:
				<-s.sem // lend the slot while parked
				<-f.done
				s.sem <- struct{}{} // re-acquire before resuming work
			}
		} else {
			<-f.done
		}
		return f.res, f.err
	}
	f := &future{done: make(chan struct{})}
	s.table[key] = f
	s.mu.Unlock()
	defer func() {
		// Resolve the future even when the task panics (the panic keeps
		// unwinding): waiters must never block on a task that will not
		// finish, and they see an error rather than a nil result.
		if r := recover(); r != nil {
			f.res, f.err = nil, fmt.Errorf("cascades: panic in search task for group %d: %v", id, r)
			close(f.done)
			panic(r)
		}
	}()
	f.res, f.err = s.searchGroup(id, req, held)
	close(f.done)
	return f.res, f.err
}

// searchGroup does the actual work of one (group, props) task: implement
// every expression, enforce required properties on every candidate, and
// keep the cheapest. (Exploration already ran to fixpoint in run's
// sequential ExploreAll pre-pass, so the group's expression set is
// frozen.) Implementation rules (one per expression) and candidate
// enforcement — whose resource-aware partition exploration is the costly
// part — fan out across the worker pool; the final reduction scans
// candidates in expression/candidate order with a strict < comparison, so
// ties break identically to the sequential search.
func (s *search) searchGroup(id GroupID, req Props, held bool) (*searchResult, error) {
	g := s.memo.Group(id)
	if len(g.Exprs) == 0 {
		return nil, fmt.Errorf("cascades: empty group %d", id)
	}

	var cands []candidate
	switch {
	case len(g.Exprs) == 1: // the common case: no alternatives to fan out
		var err error
		cands, err = s.implement(g.Exprs[0], req, held)
		if err != nil {
			return nil, err
		}
	case s.sem == nil: // inline mode: no fan-out scaffolding
		for _, e := range g.Exprs {
			cs, err := s.implement(e, req, false)
			if err != nil {
				return nil, err
			}
			cands = append(cands, cs...)
		}
	default:
		candsByExpr := make([][]candidate, len(g.Exprs))
		fns := make([]func(bool) error, len(g.Exprs))
		for i, e := range g.Exprs {
			fns[i] = func(spawned bool) error {
				var err error
				candsByExpr[i], err = s.implement(e, req, spawned || held)
				return err
			}
		}
		if err := fanOut(s.sem, fns...); err != nil {
			return nil, err
		}
		for _, cs := range candsByExpr {
			cands = append(cands, cs...)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("cascades: no implementation for group %d (%v)", id, g.Exprs[0].Op)
	}

	if len(cands) == 1 || s.sem == nil {
		// Single candidate, or inline mode: enforce and reduce directly.
		var best *searchResult
		for i := range cands {
			final, delivered, err := s.enforce(cands[i].root, cands[i].delivered, req)
			if err != nil {
				return nil, err
			}
			cost := final.TotalCostEst()
			if best == nil || cost < best.cost {
				best = &searchResult{root: final, cost: cost, delivered: delivered}
			}
		}
		return best, nil
	}

	type enforced struct {
		root      *plan.Physical
		delivered Props
		cost      float64
	}
	outs := make([]enforced, len(cands))
	efns := make([]func(bool) error, len(cands))
	for i, cand := range cands {
		efns[i] = func(bool) error { // enforcement never recurses into groups
			final, delivered, err := s.enforce(cand.root, cand.delivered, req)
			if err != nil {
				return err
			}
			outs[i] = enforced{root: final, delivered: delivered, cost: final.TotalCostEst()}
			return nil
		}
	}
	if err := fanOut(s.sem, efns...); err != nil {
		return nil, err
	}

	var best *searchResult
	for i := range outs {
		if best == nil || outs[i].cost < best.cost {
			best = &searchResult{root: outs[i].root, cost: outs[i].cost, delivered: outs[i].delivered}
		}
	}
	return best, nil
}

// candidate is a physical alternative before enforcers.
type candidate struct {
	root      *plan.Physical
	delivered Props
}

// implement applies the implementation rules for one logical expression,
// producing costed physical candidates. held is the calling goroutine's
// slot-holding state, threaded through to child group optimizations.
func (s *search) implement(e *Expr, req Props, held bool) ([]candidate, error) {
	switch e.Op {
	case plan.LGet:
		return s.implementGet(e)
	case plan.LSelect:
		return s.implementPassThrough(e, plan.PFilter, req, true, held)
	case plan.LProject:
		return s.implementPassThrough(e, plan.PProject, req, true, held)
	case plan.LProcess:
		return s.implementPassThrough(e, plan.PProcess, req, false, held)
	case plan.LOutput:
		return s.implementPassThrough(e, plan.POutput, req, true, held)
	case plan.LUnion:
		return s.implementUnion(e, held)
	case plan.LSort:
		return s.implementSort(e, req, held)
	case plan.LTopN:
		return s.implementTopN(e, req, held)
	case plan.LAggregate:
		return s.implementAggregate(e, held)
	case plan.LJoin:
		return s.implementJoin(e, held)
	default:
		return nil, fmt.Errorf("cascades: no implementation rule for %v", e.Op)
	}
}

// newNode builds a physical node from an expression and annotates its
// stats. Children must already carry partitions. Costing is deferred: the
// node is appended to pending, and the implementation rule prices its whole
// candidate set in one batched recostAll call before returning — the memo
// search's last scalar pricing path, batched.
func (s *search) newNode(pending *[]*plan.Physical, op plan.PhysicalOp, e *Expr, partitions int, children ...*plan.Physical) (*plan.Physical, error) {
	n := plan.NewPhysical(op, children...)
	if e != nil {
		n.Table = e.Table
		n.InputTemplate = e.InputTemplate
		n.Pred = e.Pred
		n.Keys = append([]plan.Column(nil), e.Keys...)
		n.UDF = e.UDF
		n.N = e.N
	}
	n.Partitions = partitions
	if err := s.catalog.AnnotateOne(n, s.jobSeed); err != nil {
		return nil, err
	}
	*pending = append(*pending, n)
	return n, nil
}

// recost re-computes the estimated cost of one operator (after its
// partition count changed).
func (s *search) recost(n *plan.Physical) {
	n.ExclusiveCostEst = s.cost.OperatorCost(n)
}

// recostAll prices a slice of operators (freshly built candidates, or a
// stage after a stage-wide partition change) in one batched call, borrowing
// a pooled cost buffer.
func (s *search) recostAll(ops []*plan.Physical) {
	if len(ops) == 0 {
		return
	}
	if len(ops) == 1 {
		// A batch of one gains nothing from the matrix path but would pay
		// its scratch management; batched and scalar costs are identical
		// row for row, so this keeps single-candidate rules cheap.
		s.recost(ops[0])
		return
	}
	g := gridPool.Get().(*gridBuf)
	if cap(g.costs) < len(ops) {
		g.costs = make([]float64, len(ops))
	}
	costs := g.costs[:len(ops)]
	costBatch(s.cost, ops, costs)
	for i, op := range ops {
		op.ExclusiveCostEst = costs[i]
	}
	gridPool.Put(g)
}

// recostPending prices an implementation rule's freshly built candidate
// set, attributing the time to the costing phase on traced runs (the
// always-on tier leaves this leaf unstamped — it fires once per rule, and
// per-rule clock reads would eat the instrumentation overhead budget).
func (s *search) recostPending(ops []*plan.Physical) {
	if so := s.obs; so.fine() {
		t0 := time.Now()
		s.recostAll(ops)
		so.add(phaseCosting, time.Since(t0))
		return
	}
	s.recostAll(ops)
}

func (s *search) implementGet(e *Expr) ([]candidate, error) {
	pending := make([]*plan.Physical, 0, 4)
	n, err := s.newNode(&pending, plan.PExtract, e, 1)
	if err != nil {
		return nil, err
	}
	delivered := Props{}
	ts, ok := s.catalog.Table(e.Table)
	if ok && ts.PartitionedOn != "" && ts.Partitions > 0 {
		// Pre-partitioned stored input: partitioning is fixed by layout.
		n.Partitions = ts.Partitions
		n.FixedPartitions = true
		delivered.Part = Partitioning{Kind: HashPartition, Keys: []plan.Column{plan.Column(ts.PartitionedOn)}}
	} else {
		n.Partitions = costmodel.DerivePartitions(n, s.maxPartitions)
	}
	s.recostPending(pending)
	return []candidate{{root: n, delivered: delivered}}, nil
}

// implementPassThrough covers unary operators that preserve partitioning
// (and, when keepOrder, ordering): Filter, Project, Process, Output. The
// parent's requirement is forwarded to the child so enforcers land as low
// as possible.
func (s *search) implementPassThrough(e *Expr, op plan.PhysicalOp, req Props, keepOrder, held bool) ([]candidate, error) {
	childReq := Props{Part: req.Part}
	if keepOrder {
		childReq.Order = req.Order
	}
	child, err := s.optimizeGroup(e.Child[0], childReq, held)
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	pending := make([]*plan.Physical, 0, 4)
	n, err := s.newNode(&pending, op, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	s.recostPending(pending)
	delivered := child.delivered
	if !keepOrder {
		delivered.Order = nil
	}
	return []candidate{{root: n, delivered: delivered}}, nil
}

func (s *search) implementUnion(e *Expr, held bool) ([]candidate, error) {
	// Union branches are independent subtrees: fan their optimizations
	// across the worker pool.
	results := make([]*searchResult, len(e.Child))
	tasks := make([]childTask, len(e.Child))
	for i, cg := range e.Child {
		tasks[i] = childTask{dst: &results[i], id: cg, req: Props{}}
	}
	if err := s.optimizeChildren(tasks, held); err != nil {
		return nil, err
	}
	children := make([]*plan.Physical, len(results))
	maxP := 1
	for i, c := range results {
		cc := c.root.Clone()
		children[i] = cc
		if cc.Partitions > maxP {
			maxP = cc.Partitions
		}
	}
	pending := make([]*plan.Physical, 0, 4)
	n, err := s.newNode(&pending, plan.PUnionAll, e, maxP, children...)
	if err != nil {
		return nil, err
	}
	s.recostPending(pending)
	return []candidate{{root: n, delivered: Props{}}}, nil
}

func (s *search) implementSort(e *Expr, req Props, held bool) ([]candidate, error) {
	child, err := s.optimizeGroup(e.Child[0], Props{Part: req.Part}, held)
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	pending := make([]*plan.Physical, 0, 4)
	n, err := s.newNode(&pending, plan.PSort, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	s.recostPending(pending)
	delivered := Props{Part: child.delivered.Part, Order: Ordering(e.Keys)}
	return []candidate{{root: n, delivered: delivered}}, nil
}

func (s *search) implementTopN(e *Expr, req Props, held bool) ([]candidate, error) {
	// Top-N consumes sorted input; the sort requirement is pushed down.
	child, err := s.optimizeGroup(e.Child[0], Props{Part: req.Part, Order: Ordering(e.Keys)}, held)
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	pending := make([]*plan.Physical, 0, 4)
	n, err := s.newNode(&pending, plan.PTopN, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	s.recostPending(pending)
	delivered := Props{Part: child.delivered.Part, Order: Ordering(e.Keys)}
	return []candidate{{root: n, delivered: delivered}}, nil
}

// aggPartitioning is the partitioning an aggregation requires: hash on the
// group keys, or a single partition for global aggregates.
func aggPartitioning(keys []plan.Column) Partitioning {
	if len(keys) == 0 {
		return Partitioning{Kind: SinglePartition}
	}
	return Partitioning{Kind: HashPartition, Keys: keys}
}

func (s *search) implementAggregate(e *Expr, held bool) ([]candidate, error) {
	part := aggPartitioning(e.Keys)

	// The three aggregation alternatives need three independent child
	// optimizations (hash-partitioned, additionally key-sorted, and
	// unconstrained for the two-phase plan): fan them out together.
	var hashChild, streamChild, localChild *searchResult
	tasks := make([]childTask, 0, 3)
	tasks = append(tasks,
		childTask{dst: &hashChild, id: e.Child[0], req: Props{Part: part}},
		childTask{dst: &localChild, id: e.Child[0], req: Props{}},
	)
	if len(e.Keys) > 0 {
		tasks = append(tasks, childTask{dst: &streamChild, id: e.Child[0], req: Props{Part: part, Order: Ordering(e.Keys)}})
	}
	if err := s.optimizeChildren(tasks, held); err != nil {
		return nil, err
	}

	pending := make([]*plan.Physical, 0, 4)
	var cands []candidate

	// Hash aggregate over hash-partitioned input.
	{
		cr := hashChild.root.Clone()
		n, err := s.newNode(&pending, plan.PHashAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: n, delivered: Props{Part: part}})
	}

	// Stream aggregate over hash-partitioned, key-sorted input.
	if streamChild != nil {
		cr := streamChild.root.Clone()
		n, err := s.newNode(&pending, plan.PStreamAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: n, delivered: Props{Part: part, Order: Ordering(e.Keys)}})
	}

	// Two-phase: local partial aggregation before the shuffle, then the
	// final hash aggregate (the paper's Q17 change).
	{
		cr := localChild.root.Clone()
		partial, err := s.newNode(&pending, plan.PPartialAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		shuffled, err := s.addExchange(partial, part)
		if err != nil {
			return nil, err
		}
		final, err := s.newNode(&pending, plan.PHashAggregate, e, shuffled.Partitions, shuffled)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: final, delivered: Props{Part: part}})
	}
	s.recostPending(pending)
	return cands, nil
}

func (s *search) implementJoin(e *Expr, held bool) ([]candidate, error) {
	part := Partitioning{Kind: HashPartition, Keys: e.Keys}
	ord := Ordering(e.Keys)

	// Four independent child optimizations back the two join alternatives:
	// hash join wants both sides hash-partitioned, merge join additionally
	// key-sorted. Fan all four out across the worker pool.
	var lh, rh, lm, rm *searchResult
	tasks := []childTask{
		{dst: &lh, id: e.Child[0], req: Props{Part: part}},
		{dst: &rh, id: e.Child[1], req: Props{Part: part}},
		{dst: &lm, id: e.Child[0], req: Props{Part: part, Order: ord}},
		{dst: &rm, id: e.Child[1], req: Props{Part: part, Order: ord}},
	}
	if err := s.optimizeChildren(tasks, held); err != nil {
		return nil, err
	}

	pending := make([]*plan.Physical, 0, 4)
	var cands []candidate
	hj, err := s.buildJoin(&pending, plan.PHashJoin, e, lh, rh)
	if err != nil {
		return nil, err
	}
	cands = append(cands, hj)
	mj, err := s.buildJoin(&pending, plan.PMergeJoin, e, lm, rm)
	if err != nil {
		return nil, err
	}
	mj.delivered.Order = ord
	cands = append(cands, mj)
	s.recostPending(pending)
	return cands, nil
}

// buildJoin clones the children, aligns their partition counts (children of
// a co-partitioned join must agree) and constructs the join node.
func (s *search) buildJoin(pending *[]*plan.Physical, op plan.PhysicalOp, e *Expr, l, r *searchResult) (candidate, error) {
	lp := l.root.Clone()
	rp := r.root.Clone()
	if err := s.alignPartitions(e, &lp, &rp); err != nil {
		return candidate{}, err
	}
	n, err := s.newNode(pending, op, e, lp.Partitions, lp, rp)
	if err != nil {
		return candidate{}, err
	}
	return candidate{
		root:      n,
		delivered: Props{Part: Partitioning{Kind: HashPartition, Keys: e.Keys}},
	}, nil
}
