package cascades

import (
	"fmt"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

// Coster predicts the exclusive latency of one physical operator. Both the
// hand-crafted models (costmodel.Default, costmodel.Tuned) and CLEO's
// learned combined model implement it; swapping the implementation is the
// paper's "minimally invasive" retrofit (step 10 in Figure 8a).
type Coster interface {
	Name() string
	OperatorCost(n *plan.Physical) float64
}

// BatchCoster is an optional Coster upgrade: implementations price a whole
// slice of operators in one call, writing len(ops) costs into out. The
// optimizer's partition exploration materializes every candidate
// partition-count variant of a stage and prices them in one CostBatch call
// instead of counts × operators scalar calls; costers detect-upgrade via
// type assertion, so scalar-only models (costmodel.Default, costmodel.Tuned)
// keep working unchanged. Batched costs must equal scalar OperatorCost
// results row for row.
type BatchCoster interface {
	Coster
	CostBatch(ops []*plan.Physical, out []float64)
}

// costBatch prices ops into out, taking the batch path when the coster has
// one and falling back to operator-at-a-time calls otherwise.
func costBatch(c Coster, ops []*plan.Physical, out []float64) {
	if bc, ok := c.(BatchCoster); ok {
		bc.CostBatch(ops, out)
		return
	}
	for i, op := range ops {
		out[i] = c.OperatorCost(op)
	}
}

// PartitionChooser performs the paper's partition optimization (step 9 in
// Figure 8a): given the operators of one completed stage (ops[0] is the
// partitioning operator), pick the stage-wide partition count that
// minimizes total stage cost. It returns the chosen count and the number
// of cost-model look-ups spent (Figure 8c's metric).
type PartitionChooser interface {
	ChooseStagePartitions(ops []*plan.Physical, maxPartitions int) (partitions, lookups int)
}

// Optimizer is the Cascades-style planner.
type Optimizer struct {
	// Catalog supplies statistics; required.
	Catalog *stats.Catalog
	// Cost is the cost model invoked in Optimize Inputs; required.
	Cost Coster
	// MaxPartitions caps per-stage parallelism.
	MaxPartitions int
	// ResourceAware enables partition exploration/optimization with
	// Chooser. When false, partition counts come from the default local
	// heuristic (costmodel.DerivePartitions), as in stock SCOPE.
	ResourceAware bool
	// Chooser performs partition optimization; required if ResourceAware.
	Chooser PartitionChooser
	// JobSeed drives per-instance statistics drift during annotation.
	JobSeed int64
	memo    *Memo
	cache   map[cacheKey]*searchResult
	lookups int
}

type cacheKey struct {
	group GroupID
	props string
}

// searchResult is the memoized best plan for (group, required props).
type searchResult struct {
	root      *plan.Physical
	cost      float64
	delivered Props
}

// Result reports one optimization run.
type Result struct {
	// Plan is the chosen physical plan, annotated with estimated stats,
	// partition counts and per-operator estimated costs.
	Plan *plan.Physical
	// Cost is the plan's total predicted cost.
	Cost float64
	// MemoGroups is the memo size, for diagnostics.
	MemoGroups int
	// ModelLookups counts cost-model invocations during partition
	// exploration (0 when not resource-aware).
	ModelLookups int
}

// Optimize plans the logical query and returns the best physical plan.
func (o *Optimizer) Optimize(root *plan.Logical) (*Result, error) {
	if o.Catalog == nil || o.Cost == nil {
		return nil, fmt.Errorf("cascades: Catalog and Cost are required")
	}
	if o.MaxPartitions <= 0 {
		o.MaxPartitions = 3000
	}
	if o.ResourceAware && o.Chooser == nil {
		return nil, fmt.Errorf("cascades: ResourceAware requires a Chooser")
	}
	o.memo = NewMemo(root)
	o.cache = map[cacheKey]*searchResult{}
	o.lookups = 0

	res, err := o.optimizeGroup(o.memo.Root(), Props{})
	if err != nil {
		return nil, err
	}
	best := res.root.Clone()
	// The topmost stage never saw a boundary above it; finalize it.
	o.optimizeTopStage(best)
	cost := best.TotalCostEst()
	return &Result{
		Plan:         best,
		Cost:         cost,
		MemoGroups:   o.memo.NumGroups(),
		ModelLookups: o.lookups,
	}, nil
}

// optimizeGroup implements the Optimize Group / Optimize Expression tasks:
// it returns the cheapest physical plan for the group meeting the required
// properties, memoized per (group, props).
func (o *Optimizer) optimizeGroup(id GroupID, req Props) (*searchResult, error) {
	key := cacheKey{group: id, props: req.key()}
	if r, ok := o.cache[key]; ok {
		return r, nil
	}
	o.memo.Explore(id)
	g := o.memo.Group(id)

	var best *searchResult
	for _, e := range g.Exprs {
		cands, err := o.implement(e, req)
		if err != nil {
			return nil, err
		}
		for _, cand := range cands {
			final, delivered, err := o.enforce(cand.root, cand.delivered, req)
			if err != nil {
				return nil, err
			}
			cost := final.TotalCostEst()
			if best == nil || cost < best.cost {
				best = &searchResult{root: final, cost: cost, delivered: delivered}
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("cascades: no implementation for group %d (%v)", id, g.Exprs[0].Op)
	}
	o.cache[key] = best
	return best, nil
}

// candidate is a physical alternative before enforcers.
type candidate struct {
	root      *plan.Physical
	delivered Props
}

// implement applies the implementation rules for one logical expression,
// producing costed physical candidates.
func (o *Optimizer) implement(e *Expr, req Props) ([]candidate, error) {
	switch e.Op {
	case plan.LGet:
		return o.implementGet(e)
	case plan.LSelect:
		return o.implementPassThrough(e, plan.PFilter, req, true)
	case plan.LProject:
		return o.implementPassThrough(e, plan.PProject, req, true)
	case plan.LProcess:
		return o.implementPassThrough(e, plan.PProcess, req, false)
	case plan.LOutput:
		return o.implementPassThrough(e, plan.POutput, req, true)
	case plan.LUnion:
		return o.implementUnion(e)
	case plan.LSort:
		return o.implementSort(e, req)
	case plan.LTopN:
		return o.implementTopN(e, req)
	case plan.LAggregate:
		return o.implementAggregate(e)
	case plan.LJoin:
		return o.implementJoin(e)
	default:
		return nil, fmt.Errorf("cascades: no implementation rule for %v", e.Op)
	}
}

// newNode builds a physical node from an expression, annotates its stats
// and estimates its cost. Children must already carry partitions.
func (o *Optimizer) newNode(op plan.PhysicalOp, e *Expr, partitions int, children ...*plan.Physical) (*plan.Physical, error) {
	n := plan.NewPhysical(op, children...)
	if e != nil {
		n.Table = e.Table
		n.InputTemplate = e.InputTemplate
		n.Pred = e.Pred
		n.Keys = append([]plan.Column(nil), e.Keys...)
		n.UDF = e.UDF
		n.N = e.N
	}
	n.Partitions = partitions
	if err := o.Catalog.AnnotateOne(n, o.JobSeed); err != nil {
		return nil, err
	}
	n.ExclusiveCostEst = o.Cost.OperatorCost(n)
	return n, nil
}

// recost re-computes the estimated cost of one operator (after its
// partition count changed).
func (o *Optimizer) recost(n *plan.Physical) {
	n.ExclusiveCostEst = o.Cost.OperatorCost(n)
}

// recostAll re-prices a slice of operators (after a stage-wide partition
// change) in one batched call, borrowing a pooled cost buffer.
func (o *Optimizer) recostAll(ops []*plan.Physical) {
	if len(ops) == 0 {
		return
	}
	g := gridPool.Get().(*gridBuf)
	if cap(g.costs) < len(ops) {
		g.costs = make([]float64, len(ops))
	}
	costs := g.costs[:len(ops)]
	costBatch(o.Cost, ops, costs)
	for i, op := range ops {
		op.ExclusiveCostEst = costs[i]
	}
	gridPool.Put(g)
}

func (o *Optimizer) implementGet(e *Expr) ([]candidate, error) {
	n, err := o.newNode(plan.PExtract, e, 1)
	if err != nil {
		return nil, err
	}
	delivered := Props{}
	ts, ok := o.Catalog.Table(e.Table)
	if ok && ts.PartitionedOn != "" && ts.Partitions > 0 {
		// Pre-partitioned stored input: partitioning is fixed by layout.
		n.Partitions = ts.Partitions
		n.FixedPartitions = true
		delivered.Part = Partitioning{Kind: HashPartition, Keys: []plan.Column{plan.Column(ts.PartitionedOn)}}
	} else {
		n.Partitions = costmodel.DerivePartitions(n, o.MaxPartitions)
	}
	o.recost(n)
	return []candidate{{root: n, delivered: delivered}}, nil
}

// implementPassThrough covers unary operators that preserve partitioning
// (and, when keepOrder, ordering): Filter, Project, Process, Output. The
// parent's requirement is forwarded to the child so enforcers land as low
// as possible.
func (o *Optimizer) implementPassThrough(e *Expr, op plan.PhysicalOp, req Props, keepOrder bool) ([]candidate, error) {
	childReq := Props{Part: req.Part}
	if keepOrder {
		childReq.Order = req.Order
	}
	child, err := o.optimizeGroup(e.Child[0], childReq)
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	n, err := o.newNode(op, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	delivered := child.delivered
	if !keepOrder {
		delivered.Order = nil
	}
	return []candidate{{root: n, delivered: delivered}}, nil
}

func (o *Optimizer) implementUnion(e *Expr) ([]candidate, error) {
	var children []*plan.Physical
	maxP := 1
	for _, cg := range e.Child {
		c, err := o.optimizeGroup(cg, Props{})
		if err != nil {
			return nil, err
		}
		cc := c.root.Clone()
		children = append(children, cc)
		if cc.Partitions > maxP {
			maxP = cc.Partitions
		}
	}
	n, err := o.newNode(plan.PUnionAll, e, maxP, children...)
	if err != nil {
		return nil, err
	}
	return []candidate{{root: n, delivered: Props{}}}, nil
}

func (o *Optimizer) implementSort(e *Expr, req Props) ([]candidate, error) {
	child, err := o.optimizeGroup(e.Child[0], Props{Part: req.Part})
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	n, err := o.newNode(plan.PSort, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	delivered := Props{Part: child.delivered.Part, Order: Ordering(e.Keys)}
	return []candidate{{root: n, delivered: delivered}}, nil
}

func (o *Optimizer) implementTopN(e *Expr, req Props) ([]candidate, error) {
	// Top-N consumes sorted input; the sort requirement is pushed down.
	child, err := o.optimizeGroup(e.Child[0], Props{Part: req.Part, Order: Ordering(e.Keys)})
	if err != nil {
		return nil, err
	}
	cr := child.root.Clone()
	n, err := o.newNode(plan.PTopN, e, cr.Partitions, cr)
	if err != nil {
		return nil, err
	}
	delivered := Props{Part: child.delivered.Part, Order: Ordering(e.Keys)}
	return []candidate{{root: n, delivered: delivered}}, nil
}

// aggPartitioning is the partitioning an aggregation requires: hash on the
// group keys, or a single partition for global aggregates.
func aggPartitioning(keys []plan.Column) Partitioning {
	if len(keys) == 0 {
		return Partitioning{Kind: SinglePartition}
	}
	return Partitioning{Kind: HashPartition, Keys: keys}
}

func (o *Optimizer) implementAggregate(e *Expr) ([]candidate, error) {
	var cands []candidate
	part := aggPartitioning(e.Keys)

	// Hash aggregate over hash-partitioned input.
	if child, err := o.optimizeGroup(e.Child[0], Props{Part: part}); err != nil {
		return nil, err
	} else {
		cr := child.root.Clone()
		n, err := o.newNode(plan.PHashAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: n, delivered: Props{Part: part}})
	}

	// Stream aggregate over hash-partitioned, key-sorted input.
	if len(e.Keys) > 0 {
		child, err := o.optimizeGroup(e.Child[0], Props{Part: part, Order: Ordering(e.Keys)})
		if err != nil {
			return nil, err
		}
		cr := child.root.Clone()
		n, err := o.newNode(plan.PStreamAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: n, delivered: Props{Part: part, Order: Ordering(e.Keys)}})
	}

	// Two-phase: local partial aggregation before the shuffle, then the
	// final hash aggregate (the paper's Q17 change).
	if child, err := o.optimizeGroup(e.Child[0], Props{}); err != nil {
		return nil, err
	} else {
		cr := child.root.Clone()
		partial, err := o.newNode(plan.PPartialAggregate, e, cr.Partitions, cr)
		if err != nil {
			return nil, err
		}
		shuffled, err := o.addExchange(partial, part)
		if err != nil {
			return nil, err
		}
		final, err := o.newNode(plan.PHashAggregate, e, shuffled.Partitions, shuffled)
		if err != nil {
			return nil, err
		}
		cands = append(cands, candidate{root: final, delivered: Props{Part: part}})
	}
	return cands, nil
}

func (o *Optimizer) implementJoin(e *Expr) ([]candidate, error) {
	part := Partitioning{Kind: HashPartition, Keys: e.Keys}
	var cands []candidate

	// Hash join: both sides hash-partitioned on the join keys.
	{
		l, err := o.optimizeGroup(e.Child[0], Props{Part: part})
		if err != nil {
			return nil, err
		}
		r, err := o.optimizeGroup(e.Child[1], Props{Part: part})
		if err != nil {
			return nil, err
		}
		c, err := o.buildJoin(plan.PHashJoin, e, l, r)
		if err != nil {
			return nil, err
		}
		cands = append(cands, c)
	}

	// Merge join: both sides additionally sorted on the join keys.
	{
		l, err := o.optimizeGroup(e.Child[0], Props{Part: part, Order: Ordering(e.Keys)})
		if err != nil {
			return nil, err
		}
		r, err := o.optimizeGroup(e.Child[1], Props{Part: part, Order: Ordering(e.Keys)})
		if err != nil {
			return nil, err
		}
		c, err := o.buildJoin(plan.PMergeJoin, e, l, r)
		if err != nil {
			return nil, err
		}
		c.delivered.Order = Ordering(e.Keys)
		cands = append(cands, c)
	}
	return cands, nil
}

// buildJoin clones the children, aligns their partition counts (children of
// a co-partitioned join must agree) and constructs the join node.
func (o *Optimizer) buildJoin(op plan.PhysicalOp, e *Expr, l, r *searchResult) (candidate, error) {
	lp := l.root.Clone()
	rp := r.root.Clone()
	if err := o.alignPartitions(e, &lp, &rp); err != nil {
		return candidate{}, err
	}
	n, err := o.newNode(op, e, lp.Partitions, lp, rp)
	if err != nil {
		return candidate{}, err
	}
	return candidate{
		root:      n,
		delivered: Props{Part: Partitioning{Kind: HashPartition, Keys: e.Keys}},
	}, nil
}
