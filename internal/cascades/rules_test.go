package cascades

import (
	"sort"
	"strings"
	"testing"

	"cleo/internal/plan"
)

// explore builds a memo from q and runs the default rules to fixpoint.
func explore(t *testing.T, q *plan.Logical) (*Memo, map[string]uint64) {
	t.Helper()
	m := NewMemo(q)
	fires := m.ExploreAll(DefaultRules(), 0)
	return m, fires
}

func TestRuleSetIdentity(t *testing.T) {
	want := "join_exchange,join_assoc,pred_pushdown_join,pred_pushdown_union,pred_pushdown_agg,project_pushdown_join"
	if got := DefaultRules().Identity(); got != want {
		t.Fatalf("DefaultRules identity = %q, want %q", got, want)
	}
	if got := EmptyRules().Identity(); got != "none" {
		t.Fatalf("EmptyRules identity = %q, want none", got)
	}
	if names := RuleNames(); strings.Join(names, ",") != want {
		t.Fatalf("RuleNames = %v", names)
	}
}

func TestEmptyRulesLeaveMemoUntouched(t *testing.T) {
	m := NewMemo(multiJoinQuery())
	before := m.NumGroups()
	if fires := m.ExploreAll(EmptyRules(), 0); fires != nil {
		t.Fatalf("EmptyRules fired: %v", fires)
	}
	if m.NumGroups() != before {
		t.Fatalf("EmptyRules grew the memo: %d -> %d", before, m.NumGroups())
	}
	for i := 0; i < m.NumGroups(); i++ {
		if n := len(m.Group(GroupID(i)).Exprs); n != 1 {
			t.Fatalf("group %d has %d exprs, want 1", i, n)
		}
	}
}

// TestJoinExchangeFires: multiJoinQuery is (clicks ⋈user users) ⋈pkey parts;
// the exchange rewrites the outer join into (clicks ⋈pkey parts) ⋈user users,
// so the outer join group gains a second join expression keyed "user".
func TestJoinExchangeFires(t *testing.T) {
	m, fires := explore(t, multiJoinQuery())
	if fires["join_exchange"] == 0 {
		t.Fatalf("join_exchange did not fire: %v", fires)
	}
	// join_assoc must NOT fire: pkey ⊄ {user}.
	if fires["join_assoc"] != 0 {
		t.Fatalf("join_assoc fired on non-subset keys: %v", fires)
	}
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		if g.Exprs[0].Op != plan.LJoin || len(g.Exprs) < 2 {
			continue
		}
		// The original outer join is keyed pkey; the exchanged alternative
		// must be keyed user with an inner join keyed pkey on its left.
		for _, e := range g.Exprs[1:] {
			if e.Op != plan.LJoin || len(e.Keys) != 1 || e.Keys[0] != "user" {
				continue
			}
			inner := m.Group(e.Child[0]).Exprs[0]
			if inner.Op == plan.LJoin && len(inner.Keys) == 1 && inner.Keys[0] == "pkey" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no exchanged join alternative (A ⋈pkey C) ⋈user B in the memo")
	}
}

// TestJoinAssocFires: with both joins on the same key, associativity holds
// (set(k2) ⊆ set(k1)) and the right-deep alternative A ⋈ (B ⋈ C) appears.
func TestJoinAssocFires(t *testing.T) {
	a := plan.NewGet("clicks_d1", "clicks_")
	b := plan.NewGet("users_d1", "users_")
	cc := plan.NewGet("parts_d1", "parts_")
	j1 := plan.NewJoin(a, b, "a.user=b.user", "user")
	j2 := plan.NewJoin(j1, cc, "a.user=c.user", "user")
	q := plan.NewOutput(plan.NewAggregate(j2, "user"))
	m, fires := explore(t, q)
	if fires["join_assoc"] == 0 {
		t.Fatalf("join_assoc did not fire on same-key joins: %v", fires)
	}
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		for _, e := range g.Exprs {
			if e.Op != plan.LJoin || len(e.Child) != 2 {
				continue
			}
			r := m.Group(e.Child[1]).Exprs[0]
			if r.Op == plan.LJoin { // right child is itself a join: bushy/right-deep shape
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no right-deep join alternative in the memo")
	}
}

// TestPredPushdownJoin: a pure comparison filter above a join is pushed to
// the probe side always, and to the build side only when it reads join keys.
func TestPredPushdownJoin(t *testing.T) {
	l := plan.NewGet("clicks_d1", "clicks_")
	r := plan.NewGet("users_d1", "users_")
	j := plan.NewJoin(l, r, "l.user=r.user", "user")
	s := plan.NewSelect(j, "user<9000") // reads the join key: both sides eligible
	q := plan.NewOutput(plan.NewAggregate(s, "user"))
	m, fires := explore(t, q)
	if fires["pred_pushdown_join"] < 2 {
		t.Fatalf("pred_pushdown_join fired %d times, want >=2 (probe and build): %v",
			fires["pred_pushdown_join"], fires)
	}
	// The select's group must now also hold join alternatives whose inputs
	// are filtered.
	seenJoinAlt := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		if g.Exprs[0].Op != plan.LSelect {
			continue
		}
		for _, e := range g.Exprs[1:] {
			if e.Op == plan.LJoin {
				seenJoinAlt = true
			}
		}
	}
	if !seenJoinAlt {
		t.Fatal("select group gained no pushed-down join alternative")
	}
}

// TestPredPushdownJoinProbeOnly: a filter on a non-key column pushes into
// the probe side only — matched build rows need not satisfy it.
func TestPredPushdownJoinProbeOnly(t *testing.T) {
	l := plan.NewGet("clicks_d1", "clicks_")
	r := plan.NewGet("users_d1", "users_")
	j := plan.NewJoin(l, r, "l.user=r.user", "user")
	s := plan.NewSelect(j, "region<5") // region is scan-schema (this pred names it), not a join key
	q := plan.NewOutput(plan.NewAggregate(s, "region"))
	m, fires := explore(t, q)
	if fires["pred_pushdown_join"] != 1 {
		t.Fatalf("pred_pushdown_join fired %d times, want exactly 1 (probe side): %v",
			fires["pred_pushdown_join"], fires)
	}
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		for _, e := range g.Exprs {
			if e.Op != plan.LJoin || len(e.Child) != 2 {
				continue
			}
			if re := m.Group(e.Child[1]).Exprs[0]; re.Op == plan.LSelect && re.Pred == "region<5" {
				t.Fatal("non-key filter was pushed into the build side")
			}
		}
	}
}

// TestPredPushdownJoinRefusesBareAndReserved: bare predicates read the
// row-content hash and reserved columns are rewritten by the join, so
// neither may move.
func TestPredPushdownJoinRefusesBareAndReserved(t *testing.T) {
	for _, pred := range []string{"recent", "__sum<5"} {
		l := plan.NewGet("clicks_d1", "clicks_")
		r := plan.NewGet("users_d1", "users_")
		j := plan.NewJoin(l, r, "l.user=r.user", "user")
		s := plan.NewSelect(j, pred)
		q := plan.NewOutput(plan.NewAggregate(s, "user"))
		_, fires := explore(t, q)
		if fires["pred_pushdown_join"] != 0 {
			t.Fatalf("pred %q moved below a join: %v", pred, fires)
		}
	}
}

// TestPredPushdownUnion: a filter above a union of scans distributes into
// every branch (even a bare predicate — the branches share the one global
// scan schema, so the row hash is position-independent there).
func TestPredPushdownUnion(t *testing.T) {
	u := plan.NewUnion(
		plan.NewGet("clicks_d1", "clicks_"),
		plan.NewGet("users_d1", "users_"),
	)
	s := plan.NewSelect(u, "recent")
	q := plan.NewOutput(plan.NewAggregate(s, "user"))
	m, fires := explore(t, q)
	if fires["pred_pushdown_union"] == 0 {
		t.Fatalf("pred_pushdown_union did not fire: %v", fires)
	}
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		if g.Exprs[0].Op != plan.LSelect {
			continue
		}
		for _, e := range g.Exprs[1:] {
			if e.Op != plan.LUnion {
				continue
			}
			all := true
			for _, b := range e.Child {
				be := m.Group(b).Exprs[0]
				if be.Op != plan.LSelect || be.Pred != "recent" {
					all = false
				}
			}
			if all {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no union-of-filtered-branches alternative in the memo")
	}
}

// TestPredPushdownUnionRefusesNonScanBranches: unionQuery's branches are
// aggregates, whose output rows differ from their scan inputs, so the
// filter must stay above the union.
func TestPredPushdownUnionRefusesNonScanBranches(t *testing.T) {
	u := plan.NewUnion(
		plan.NewAggregate(plan.NewGet("clicks_d1", "clicks_"), "user"),
		plan.NewAggregate(plan.NewGet("users_d1", "users_"), "user"),
	)
	s := plan.NewSelect(u, "user<9000")
	q := plan.NewOutput(s)
	_, fires := explore(t, q)
	if fires["pred_pushdown_union"] != 0 {
		t.Fatalf("pred_pushdown_union fired over aggregate branches: %v", fires)
	}
}

// TestPredPushdownAgg: a filter on group-key columns commutes below the
// aggregate; one on other columns does not.
func TestPredPushdownAgg(t *testing.T) {
	agg := plan.NewAggregate(plan.NewGet("clicks_d1", "clicks_"), "user")
	s := plan.NewSelect(agg, "user<9000")
	q := plan.NewOutput(s)
	m, fires := explore(t, q)
	if fires["pred_pushdown_agg"] == 0 {
		t.Fatalf("pred_pushdown_agg did not fire: %v", fires)
	}
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		for _, e := range g.Exprs {
			if e.Op != plan.LAggregate {
				continue
			}
			if ce := m.Group(e.Child[0]).Exprs[0]; ce.Op == plan.LSelect && ce.Pred == "user<9000" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no aggregate-over-filter alternative in the memo")
	}

	agg2 := plan.NewAggregate(plan.NewGet("clicks_d1", "clicks_"), "user")
	s2 := plan.NewSelect(agg2, "region<5") // region is not a group key
	_, fires2 := explore(t, plan.NewOutput(s2))
	if fires2["pred_pushdown_agg"] != 0 {
		t.Fatalf("pred_pushdown_agg fired on a non-key filter: %v", fires2)
	}
}

// TestProjectPushdownJoin: Project_K above a join spawns the narrowed
// probe-side projection keeping K ∪ join keys, exactly once (the
// termination guard stops re-derivation).
func TestProjectPushdownJoin(t *testing.T) {
	l := plan.NewGet("clicks_d1", "clicks_")
	r := plan.NewGet("users_d1", "users_")
	j := plan.NewJoin(l, r, "l.user=r.user", "user")
	p := plan.NewProject(j, "region")
	q := plan.NewOutput(plan.NewAggregate(p, "region"))
	m, fires := explore(t, q)
	if fires["project_pushdown_join"] == 0 {
		t.Fatalf("project_pushdown_join did not fire: %v", fires)
	}
	found := false
	for i := 0; i < m.NumGroups(); i++ {
		g := m.Group(GroupID(i))
		for _, e := range g.Exprs {
			if e.Op != plan.LProject || len(e.Keys) != 1 || e.Keys[0] != "region" {
				continue
			}
			je := m.Group(e.Child[0]).Exprs[0]
			if je.Op != plan.LJoin {
				continue
			}
			pe := m.Group(je.Child[0]).Exprs[0]
			if pe.Op == plan.LProject && colSetEqual(pe.Keys, []plan.Column{"region", "user"}) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no Project(Project_{K∪jk} ⋈ R) alternative in the memo")
	}
}

// TestExploreBudgetRefusesGrowth: with the budget already consumed by
// copy-in, rules cannot intern subexpressions, so the memo cannot grow new
// groups (and rules needing them do not fire at all).
func TestExploreBudgetRefusesGrowth(t *testing.T) {
	m := NewMemo(multiJoinQuery())
	before := m.NumGroups()
	m.ExploreAll(DefaultRules(), before)
	if m.NumGroups() != before {
		t.Fatalf("budget %d exceeded: %d groups", before, m.NumGroups())
	}
}

// TestExploreTerminatesOnSameKeyChain: a same-key join chain has an
// exponential reordering space; the budget, per-group expression cap and
// pass cap must land exploration at a bounded fixpoint.
func TestExploreTerminatesOnSameKeyChain(t *testing.T) {
	q := plan.NewGet("clicks_d1", "t0_")
	for i := 1; i < 8; i++ {
		q = plan.NewJoin(q, plan.NewGet("users_d1", "t_"), "a=b", "user")
	}
	m, _ := explore(t, plan.NewOutput(plan.NewAggregate(q, "user")))
	if m.NumGroups() > DefaultMemoBudget {
		t.Fatalf("memo has %d groups, budget is %d", m.NumGroups(), DefaultMemoBudget)
	}
	for i := 0; i < m.NumGroups(); i++ {
		if n := len(m.Group(GroupID(i)).Exprs); n > maxGroupExprs {
			t.Fatalf("group %d has %d exprs, cap is %d", i, n, maxGroupExprs)
		}
	}
}

// TestExploreDeterministic: two explorations of the same plan produce
// byte-identical memos (group-by-group expression fingerprints) and
// identical fire counts — the property the template cache and the
// parallel==sequential guarantee rest on.
func TestExploreDeterministic(t *testing.T) {
	dump := func(m *Memo) string {
		var b strings.Builder
		for i := 0; i < m.NumGroups(); i++ {
			for _, e := range m.Group(GroupID(i)).Exprs {
				b.WriteString(e.fingerprint())
				b.WriteByte('\n')
			}
			b.WriteByte(';')
		}
		return b.String()
	}
	for name, q := range parallelTestQueries() {
		m1, f1 := explore(t, q)
		m2, f2 := explore(t, q)
		if dump(m1) != dump(m2) {
			t.Fatalf("%s: explorations diverged", name)
		}
		if len(f1) != len(f2) {
			t.Fatalf("%s: fire maps differ: %v vs %v", name, f1, f2)
		}
		for k, v := range f1 {
			if f2[k] != v {
				t.Fatalf("%s: fire counts differ for %s: %d vs %d", name, k, v, f2[k])
			}
		}
	}
}

// TestExploreKeepsMemoAcyclic: rule insertion must never create a cycle —
// a cyclic memo would hang extraction. Walk every group's every child edge
// and verify the reachability relation has no group reaching itself.
func TestExploreKeepsMemoAcyclic(t *testing.T) {
	queries := parallelTestQueries()
	l := plan.NewGet("clicks_d1", "clicks_")
	r := plan.NewGet("users_d1", "users_")
	j := plan.NewJoin(l, r, "l.user=r.user", "user")
	queries["filtered_join"] = plan.NewOutput(plan.NewAggregate(plan.NewSelect(j, "user<9000"), "user"))
	for name, q := range queries {
		m, _ := explore(t, q)
		for i := 0; i < m.NumGroups(); i++ {
			id := GroupID(i)
			seen := map[GroupID]bool{}
			stack := []GroupID{}
			for _, e := range m.Group(id).Exprs {
				stack = append(stack, e.Child...)
			}
			for len(stack) > 0 {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if g == id {
					t.Fatalf("%s: group %d reaches itself", name, id)
				}
				if seen[g] {
					continue
				}
				seen[g] = true
				for _, e := range m.Group(g).Exprs {
					stack = append(stack, e.Child...)
				}
			}
		}
	}
}

// TestOptimizerReportsRuleFires: a full optimization surfaces the fire
// counts on its Result, and rules change which plans exist to choose from.
func TestOptimizerReportsRuleFires(t *testing.T) {
	o := defaultOptimizer(testCatalog())
	res, err := o.Optimize(multiJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleFires["join_exchange"] == 0 {
		t.Fatalf("Result.RuleFires = %v, want join_exchange fires", res.RuleFires)
	}

	off := defaultOptimizer(testCatalog())
	off.Rules = EmptyRules()
	res2, err := off.Optimize(multiJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.RuleFires) != 0 {
		t.Fatalf("EmptyRules optimization reported fires: %v", res2.RuleFires)
	}
	if res2.Plan == nil {
		t.Fatal("EmptyRules optimization returned no plan")
	}
}

// TestUnionColsSorted pins the helper the interning fingerprints depend on.
func TestUnionColsSorted(t *testing.T) {
	got := unionCols([]plan.Column{"b", "a"}, []plan.Column{"c", "a"})
	want := []plan.Column{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("unionCols = %v, want %v", got, want)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("unionCols not sorted: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unionCols = %v, want %v", got, want)
		}
	}
}
