package cascades

import (
	"strings"

	"cleo/internal/exec"
	"cleo/internal/plan"
)

// Transformation rules. Every rule here is semantics-preserving with
// respect to the streaming executor's actual operator semantics — not an
// idealized relational algebra — and each guard below cites the executor
// behavior it depends on:
//
//   - Joins emit LEFT rows: the output schema is exactly the left input's
//     schema, and every output row is the left row verbatim except the
//     payload column (schema.valIndex: __val, else __sum, else __cnt),
//     which becomes leftPayload+rightPayload per match. Join predicates are
//     carried as metadata and never evaluated.
//   - Aggregates group by key columns resolved in the input schema (a
//     missing key is a compile error), emit one row per group in
//     first-arrival order, and derive __cnt/__sum from the payload column.
//   - Predicates are conjunctions whose terms read columns when bound and
//     fall back to the row-content hash otherwise (bare terms always, and
//     comparison terms whose lhs column is absent from the schema). A
//     row-hash-dependent term is pinned to its position: any operator that
//     rewrites the payload column changes the hash.
//   - The scan schema is one global set per plan — the sorted, de-duplicated,
//     width-capped union of every key column and predicate identifier —
//     and every rewrite below preserves that union (rules only move
//     predicates and introduce projections over existing key columns), so
//     the rewritten plan compiles against the same scan schema.
//
// Two classical transformations are deliberately absent:
//
//   - Join commutativity. Swapping inputs changes which side's rows are
//     emitted — a different output schema and multiset, not an equivalent
//     plan. (An earlier hard-coded commute produced silently wrong results
//     on plans whose sides carried different derived columns.)
//   - Eager aggregate pushdown below joins. The join multiplies each left
//     row by its match count, so a pre-aggregated __cnt no longer counts
//     source rows and there is no operator to re-scale it; the rewrite is
//     not multiset-preserving in this engine.

// Rule is one transformation. Apply inspects a single expression and
// returns alternative expressions, equivalent to it, for insertion into
// the same group. Implementations must be stateless: the fixpoint driver
// calls Apply repeatedly and relies on expression-level deduplication for
// termination, and a shared RuleSet is used by concurrent searches.
type Rule interface {
	Name() string
	Apply(c *RuleContext, e *Expr) []*Expr
}

// RuleSet is an ordered list of rules. The order is part of the set's
// identity: exploration is sequential and deterministic, so two searches
// with the same rule set visit identical expression sets in identical
// order.
type RuleSet struct {
	rules []Rule
}

// NewRuleSet builds a rule set applying rules in the given order.
func NewRuleSet(rules ...Rule) *RuleSet { return &RuleSet{rules: rules} }

// DefaultRules is the full transformation-rule set.
func DefaultRules() *RuleSet {
	return NewRuleSet(
		joinExchange{},
		joinAssoc{},
		predPushdownJoin{},
		predPushdownUnion{},
		predPushdownAgg{},
		projectPushdownJoin{},
	)
}

// EmptyRules is the no-transformation set: the memo holds exactly the
// copied-in plan. It is the baseline side of plan-quality comparisons.
func EmptyRules() *RuleSet { return &RuleSet{} }

// Names lists the set's rule names in application order.
func (rs *RuleSet) Names() []string {
	out := make([]string, len(rs.rules))
	for i, r := range rs.rules {
		out[i] = r.Name()
	}
	return out
}

// Identity renders the set for template-cache keying: two optimizer
// configurations share memo snapshots only when their rule sets (and
// order) match.
func (rs *RuleSet) Identity() string {
	if len(rs.rules) == 0 {
		return "none"
	}
	return strings.Join(rs.Names(), ",")
}

// RuleNames lists every rule in DefaultRules, for metrics registration.
func RuleNames() []string { return DefaultRules().Names() }

// DefaultMemoBudget caps exploration growth: once the memo reaches this
// many groups, rules stop creating new groups (existing groups may still
// gain expressions over existing children). The cutoff is deterministic
// because exploration is sequential.
const DefaultMemoBudget = 256

// maxGroupExprs bounds the alternatives per group, so pathological inputs
// (long same-key join chains, whose reordering space is exponential) keep
// both exploration and the per-expression search fan-out bounded.
const maxGroupExprs = 64

// maxExplorePasses bounds outer fixpoint sweeps over the whole memo. Each
// sweep already chases intra-group growth, so a second sweep is only
// needed when a rule fed an earlier group from a later one; in practice
// the fixpoint lands well inside this cap.
const maxExplorePasses = 8

// availInfo describes the bindable (non-reserved) columns a group's output
// schema carries. top means the subtree is a pure scan pipeline — its
// schema is the plan's global scan schema.
type availInfo struct {
	top  bool
	cols map[plan.Column]bool
}

// RuleContext threads one exploration's shared state through rule
// applications: the memo, the global scan-column set, memoized per-group
// schema analysis, and the interning table for rule-created subexpressions.
type RuleContext struct {
	memo   *Memo
	scan   map[plan.Column]bool
	avail  map[GroupID]availInfo
	intern map[string]GroupID
	budget int
}

// Group returns a memo group.
func (c *RuleContext) Group(id GroupID) *Group { return c.memo.Group(id) }

// Avail reports the bindable columns of a group's output schema, memoized.
// All expressions of a group are equivalent (same output rows, same
// schema), so the first expression is a safe representative.
func (c *RuleContext) Avail(id GroupID) availInfo {
	if a, ok := c.avail[id]; ok {
		return a
	}
	e := c.memo.Group(id).Exprs[0]
	var a availInfo
	switch {
	case len(e.Child) == 0: // Get
		a = availInfo{top: true}
	case e.Op == plan.LProject && len(e.Keys) > 0:
		// projectSchema keeps the key columns present in the input (plus
		// the reserved columns, which avail never tracks).
		a = availInfo{cols: c.carried(e.Keys, c.Avail(e.Child[0]))}
	case e.Op == plan.LAggregate && len(e.Keys) > 0:
		a = availInfo{cols: c.carried(e.Keys, c.Avail(e.Child[0]))}
	default:
		// Select, Process, Sort, TopN, Output, keyless Project (a
		// pass-through), global Aggregate (keys only), Join and Union
		// (both emit the first child's schema).
		a = c.Avail(e.Child[0])
	}
	c.avail[id] = a
	return a
}

// carried filters keys to the non-reserved columns bound in the child.
func (c *RuleContext) carried(keys []plan.Column, child availInfo) map[plan.Column]bool {
	cols := make(map[plan.Column]bool, len(keys))
	for _, k := range keys {
		if !exec.IsReservedColumn(k) && c.Bound(child, k) {
			cols[k] = true
		}
	}
	return cols
}

// Bound reports whether col resolves to a real column at a position with
// the given avail.
func (c *RuleContext) Bound(a availInfo, col plan.Column) bool {
	if a.top {
		return c.scan[col]
	}
	return a.cols[col]
}

// boundAll reports whether every column resolves under a.
func (c *RuleContext) boundAll(a availInfo, cols []plan.Column) bool {
	for _, col := range cols {
		if !c.Bound(a, col) {
			return false
		}
	}
	return true
}

// Subexpr returns a group holding exactly e, interning so repeated
// constructions of the same subexpression share one group. It refuses
// (ok=false) once the memo budget is exhausted. Rule-created groups are
// never merged into pre-existing ones: reusing a group that might sit
// above the rewrite site could make the memo cyclic, and a duplicate
// group is merely redundant while a cycle is fatal.
func (c *RuleContext) Subexpr(e *Expr) (GroupID, bool) {
	fp := e.fingerprint()
	if id, ok := c.intern[fp]; ok {
		return id, true
	}
	if c.memo.NumGroups() >= c.budget {
		return 0, false
	}
	g := c.memo.newGroup()
	c.memo.addExpr(g, e)
	c.intern[fp] = g.ID
	return g.ID, true
}

// insert adds a rule-produced expression to g, enforcing the per-group cap
// and the memo's acyclicity (an interned subexpression could otherwise
// resolve to a group that transitively contains g).
func (c *RuleContext) insert(g *Group, e *Expr) bool {
	if len(g.Exprs) >= maxGroupExprs {
		return false
	}
	if c.reaches(e.Child, g.ID) {
		return false
	}
	return c.memo.addExpr(g, e)
}

// reaches reports whether target is reachable from any of the given groups.
func (c *RuleContext) reaches(from []GroupID, target GroupID) bool {
	seen := map[GroupID]bool{}
	var walk func(GroupID) bool
	walk = func(id GroupID) bool {
		if id == target {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, e := range c.memo.Group(id).Exprs {
			for _, ch := range e.Child {
				if walk(ch) {
					return true
				}
			}
		}
		return false
	}
	for _, id := range from {
		if walk(id) {
			return true
		}
	}
	return false
}

// ExploreAll runs the rule set over the memo to fixpoint, sequentially and
// deterministically: groups in ascending ID order (including groups created
// mid-pass), expressions in insertion order, rules in set order. It returns
// the number of inserted expressions per rule. Exploration happens once per
// memo — before the parallel search fans out — so the search itself reads
// a frozen expression set, and a memo published as a template is already at
// fixpoint. budget <= 0 selects DefaultMemoBudget.
func (m *Memo) ExploreAll(rules *RuleSet, budget int) map[string]uint64 {
	if m.explored.Swap(true) {
		return nil
	}
	defer m.finishExplore()
	if rules == nil || len(rules.rules) == 0 {
		return nil
	}
	if budget <= 0 {
		budget = DefaultMemoBudget
	}
	ctx := &RuleContext{
		memo:   m,
		scan:   map[plan.Column]bool{},
		avail:  map[GroupID]availInfo{},
		intern: map[string]GroupID{},
		budget: budget,
	}
	// The global scan schema is a pure function of the plan's key columns
	// and predicates, both of which every rule preserves, so it can be
	// derived once from the copied-in expressions.
	var keys []plan.Column
	var preds []string
	for id := 0; id < m.NumGroups(); id++ {
		for _, e := range m.Group(GroupID(id)).Exprs {
			keys = append(keys, e.Keys...)
			if e.Pred != "" {
				preds = append(preds, e.Pred)
			}
		}
	}
	for _, col := range exec.ScanColumnSet(keys, preds) {
		ctx.scan[col] = true
	}

	fires := map[string]uint64{}
	for pass := 0; pass < maxExplorePasses; pass++ {
		changed := false
		for id := 0; id < m.NumGroups(); id++ { // NumGroups grows mid-pass
			g := m.Group(GroupID(id))
			for i := 0; i < len(g.Exprs); i++ { // Exprs grows mid-loop
				e := g.Exprs[i]
				for _, r := range rules.rules {
					for _, ne := range r.Apply(ctx, e) {
						if ctx.insert(g, ne) {
							fires[r.Name()]++
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return fires
}

// finishExplore releases the duplicate-detection maps: nothing inserts
// into an explored memo again, and templates keep the memo alive.
func (m *Memo) finishExplore() {
	for id := 0; id < m.NumGroups(); id++ {
		m.Group(GroupID(id)).seen = nil
	}
}

// hasReservedCols reports whether any key is a derived payload column.
// Rules that re-route key columns around a join must refuse them: the
// payload column's value is rewritten per match, so it only compares
// equal at its original position.
func hasReservedCols(keys []plan.Column) bool {
	for _, k := range keys {
		if exec.IsReservedColumn(k) {
			return true
		}
	}
	return false
}

// subsetCols reports set(a) ⊆ set(b).
func subsetCols(a, b []plan.Column) bool {
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// unionCols merges two key lists into a sorted, de-duplicated list.
func unionCols(a, b []plan.Column) []plan.Column {
	set := make(map[plan.Column]bool, len(a)+len(b))
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]plan.Column, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ { // insertion sort: key lists are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// colSetEqual reports set equality of two key lists.
func colSetEqual(a, b []plan.Column) bool {
	return subsetCols(a, b) && subsetCols(b, a)
}

// joinTop matches a binary equi-join with usable (non-payload) keys.
func joinTop(e *Expr) bool {
	return e.Op == plan.LJoin && len(e.Child) == 2 && len(e.Keys) > 0 &&
		!hasReservedCols(e.Keys)
}

// joinExchange rewrites (A ⋈k1 B) ⋈k2 C into (A ⋈k2 C) ⋈k1 B — the join
// exchange that lets the search pick which join runs first. It is always
// equivalence-preserving here: the left spine carries A's rows verbatim in
// both shapes, both key lists read A's columns (each join's output schema
// is its left input's schema, so k2 resolves in A exactly as it resolved
// in A⋈B), the match set per A-row is the cartesian {k1-matches in B} ×
// {k2-matches in C} either way, and the payload sum a+b+c is order-free.
type joinExchange struct{}

func (joinExchange) Name() string { return "join_exchange" }

func (joinExchange) Apply(c *RuleContext, e *Expr) []*Expr {
	if !joinTop(e) {
		return nil
	}
	var out []*Expr
	for _, le := range c.Group(e.Child[0]).Exprs {
		if !joinTop(le) {
			continue
		}
		ig, ok := c.Subexpr(&Expr{
			Op:    plan.LJoin,
			Child: []GroupID{le.Child[0], e.Child[1]},
			Pred:  e.Pred,
			Keys:  e.Keys,
		})
		if !ok {
			continue
		}
		out = append(out, &Expr{
			Op:    plan.LJoin,
			Child: []GroupID{ig, le.Child[1]},
			Pred:  le.Pred,
			Keys:  le.Keys,
		})
	}
	return out
}

// joinAssoc rewrites (A ⋈k1 B) ⋈k2 C into A ⋈k1 (B ⋈k2 C), building bushy
// trees. It requires set(k2) ⊆ set(k1): inner-join matches equalize k1
// between A and B, hence also k2, so matching C against B's k2 columns
// selects exactly the C-rows the original matched against A — and k2 is
// guaranteed present in B's schema because k1 resolved there. The payload
// sum is associative, and both shapes emit A's rows.
type joinAssoc struct{}

func (joinAssoc) Name() string { return "join_assoc" }

func (joinAssoc) Apply(c *RuleContext, e *Expr) []*Expr {
	if !joinTop(e) {
		return nil
	}
	var out []*Expr
	for _, le := range c.Group(e.Child[0]).Exprs {
		if !joinTop(le) || !subsetCols(e.Keys, le.Keys) {
			continue
		}
		ig, ok := c.Subexpr(&Expr{
			Op:    plan.LJoin,
			Child: []GroupID{le.Child[1], e.Child[1]},
			Pred:  e.Pred,
			Keys:  e.Keys,
		})
		if !ok {
			continue
		}
		out = append(out, &Expr{
			Op:    plan.LJoin,
			Child: []GroupID{le.Child[0], ig},
			Pred:  le.Pred,
			Keys:  le.Keys,
		})
	}
	return out
}

// movablePred parses pred and reports whether its verdict depends only on
// the given non-reserved bound columns — the precondition for evaluating
// it at a different plan position. Bare (and unparseable) terms read the
// row-content hash; reserved columns are rewritten by joins and
// aggregates; an unbound comparison lhs also falls back to the row hash.
func movablePred(pred string) (exec.PredShape, bool) {
	sh := exec.AnalyzePred(pred)
	if sh.HasBare || sh.Terms == 0 {
		return sh, false
	}
	for _, col := range sh.Cols {
		if exec.IsReservedColumn(col) {
			return sh, false
		}
	}
	return sh, true
}

// predPushdownJoin pushes a filter above a join into an input. Into the
// left input it is exact whenever the predicate's columns are bound,
// non-reserved left columns: the join carries left rows verbatim except
// the (reserved) payload column, so the verdict per row is unchanged and
// filtering before or after the match is the same cut. Into the right
// (build) input it is exact in the narrower case where the predicate reads
// join-key columns only — matched pairs agree on those, so discarding
// failing build rows discards exactly the failing matches.
type predPushdownJoin struct{}

func (predPushdownJoin) Name() string { return "pred_pushdown_join" }

func (predPushdownJoin) Apply(c *RuleContext, e *Expr) []*Expr {
	if e.Op != plan.LSelect || len(e.Child) != 1 || e.Pred == "" {
		return nil
	}
	sh, ok := movablePred(e.Pred)
	if !ok {
		return nil
	}
	var out []*Expr
	for _, je := range c.Group(e.Child[0]).Exprs {
		if je.Op != plan.LJoin || len(je.Child) != 2 || len(je.Keys) == 0 {
			continue
		}
		if c.boundAll(c.Avail(je.Child[0]), sh.Cols) {
			if ig, ok := c.Subexpr(&Expr{Op: plan.LSelect, Child: []GroupID{je.Child[0]}, Pred: e.Pred}); ok {
				out = append(out, &Expr{
					Op:    plan.LJoin,
					Child: []GroupID{ig, je.Child[1]},
					Pred:  je.Pred,
					Keys:  je.Keys,
				})
			}
		}
		if subsetCols(sh.Cols, je.Keys) && !hasReservedCols(je.Keys) &&
			c.boundAll(c.Avail(je.Child[1]), sh.Cols) {
			if ig, ok := c.Subexpr(&Expr{Op: plan.LSelect, Child: []GroupID{je.Child[1]}, Pred: e.Pred}); ok {
				out = append(out, &Expr{
					Op:    plan.LJoin,
					Child: []GroupID{je.Child[0], ig},
					Pred:  je.Pred,
					Keys:  je.Keys,
				})
			}
		}
	}
	return out
}

// predPushdownUnion distributes a filter over a union-all's branches. It
// fires only when every branch is a pure scan pipeline: then all branches
// share the one global scan schema, the union concatenates their rows
// without adaptation, and filtering identical rows under an identical
// schema before or after concatenation is the same multiset — for any
// predicate, bare terms included.
type predPushdownUnion struct{}

func (predPushdownUnion) Name() string { return "pred_pushdown_union" }

func (predPushdownUnion) Apply(c *RuleContext, e *Expr) []*Expr {
	if e.Op != plan.LSelect || len(e.Child) != 1 || e.Pred == "" {
		return nil
	}
	var out []*Expr
	for _, ue := range c.Group(e.Child[0]).Exprs {
		if ue.Op != plan.LUnion || len(ue.Child) == 0 {
			continue
		}
		allTop := true
		for _, b := range ue.Child {
			if !c.Avail(b).top {
				allTop = false
				break
			}
		}
		if !allTop {
			continue
		}
		kids := make([]GroupID, 0, len(ue.Child))
		ok := true
		for _, b := range ue.Child {
			ig, k := c.Subexpr(&Expr{Op: plan.LSelect, Child: []GroupID{b}, Pred: e.Pred})
			if !k {
				ok = false
				break
			}
			kids = append(kids, ig)
		}
		if ok {
			out = append(out, &Expr{Op: plan.LUnion, Child: kids})
		}
	}
	return out
}

// predPushdownAgg rewrites σ(Agg_K(X)) into Agg_K(σ(X)) when the predicate
// reads group-key columns only: every row of a group shares its key
// values, so filtering rows below removes whole groups — exactly the
// groups the filter above would remove — and the surviving groups keep
// identical member rows, hence identical __cnt/__sum and first-arrival
// order.
type predPushdownAgg struct{}

func (predPushdownAgg) Name() string { return "pred_pushdown_agg" }

func (predPushdownAgg) Apply(c *RuleContext, e *Expr) []*Expr {
	if e.Op != plan.LSelect || len(e.Child) != 1 || e.Pred == "" {
		return nil
	}
	sh, ok := movablePred(e.Pred)
	if !ok {
		return nil
	}
	var out []*Expr
	for _, ae := range c.Group(e.Child[0]).Exprs {
		if ae.Op != plan.LAggregate || len(ae.Child) != 1 || len(ae.Keys) == 0 {
			continue
		}
		if !subsetCols(sh.Cols, ae.Keys) {
			continue
		}
		ig, k := c.Subexpr(&Expr{Op: plan.LSelect, Child: []GroupID{ae.Child[0]}, Pred: e.Pred})
		if !k {
			continue
		}
		out = append(out, &Expr{Op: plan.LAggregate, Child: []GroupID{ig}, Keys: ae.Keys})
	}
	return out
}

// projectPushdownJoin narrows a join's probe input early: Project_K(J ⋈ R)
// becomes Project_K(Project_{K∪jk}(J) ⋈ R). The inner projection keeps the
// join keys (so matching is unchanged) and every reserved column (the
// executor's projection always retains them, so the payload column and its
// combination are unchanged); the outer projection then restores the exact
// original schema. The guard skips joins whose probe side already is that
// projection, which is also the rule's termination argument: the key set
// K∪jk only grows toward a fixed column universe.
type projectPushdownJoin struct{}

func (projectPushdownJoin) Name() string { return "project_pushdown_join" }

func (projectPushdownJoin) Apply(c *RuleContext, e *Expr) []*Expr {
	if e.Op != plan.LProject || len(e.Child) != 1 || len(e.Keys) == 0 {
		return nil
	}
	var out []*Expr
	for _, je := range c.Group(e.Child[0]).Exprs {
		if je.Op != plan.LJoin || len(je.Child) != 2 || len(je.Keys) == 0 {
			continue
		}
		newKeys := unionCols(e.Keys, je.Keys)
		already := false
		for _, pe := range c.Group(je.Child[0]).Exprs {
			if pe.Op == plan.LProject && colSetEqual(pe.Keys, newKeys) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		pg, ok := c.Subexpr(&Expr{Op: plan.LProject, Child: []GroupID{je.Child[0]}, Keys: newKeys})
		if !ok {
			continue
		}
		jg, ok := c.Subexpr(&Expr{
			Op:    plan.LJoin,
			Child: []GroupID{pg, je.Child[1]},
			Pred:  je.Pred,
			Keys:  je.Keys,
		})
		if !ok {
			continue
		}
		out = append(out, &Expr{Op: plan.LProject, Child: []GroupID{jg}, Keys: e.Keys})
	}
	return out
}
