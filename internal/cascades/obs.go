package cascades

import (
	"strconv"
	"sync/atomic"
	"time"

	"cleo/internal/obs"
)

// Phase indices for the per-search accumulators. The phases are disjoint
// leaf intervals of the search — copy-in, outermost logical exploration,
// implementation-rule candidate costing, enforcer construction, and
// partition arbitration — so their sum approaches the search's wall time
// (the residual is surfaced as an explicit "other" span on traces).
const (
	phaseCopyIn = iota
	phaseExplore
	phaseCosting
	phaseEnforce
	phaseArbitrate
	numPhases
)

var phaseNames = [numPhases]string{"copy_in", "explore", "costing", "enforce", "arbitrate"}

// SearchMetrics holds the optimizer's registered instruments. One value is
// shared by every search of a System; obtain it once via NewSearchMetrics
// and reuse it — instrument handles resolve at registration, never per run.
//
// Always-on recording is deliberately coarse to protect the hot path:
// whole-search latency, copy-in/explore (template misses only — hits skip
// both phases entirely), arbitration, and template hit/miss counters. The
// finer costing and enforcement phases are stamped only on traced runs and
// fed into the same histograms, so /metrics shows them as a sample of
// traced traffic rather than taxing every optimization with extra clock
// reads.
type SearchMetrics struct {
	OptimizeSeconds *obs.Histogram
	PhaseSeconds    [numPhases]*obs.Histogram
	TemplateHits    *obs.Counter
	TemplateMisses  *obs.Counter
	// RuleFires counts inserted memo expressions per transformation rule
	// (pre-registered for every DefaultRules rule; custom rules outside
	// that set simply go unrecorded).
	RuleFires map[string]*obs.Counter
}

// NewSearchMetrics registers the optimizer's instruments on r (nil r → nil
// metrics, which disables recording).
func NewSearchMetrics(r *obs.Registry) *SearchMetrics {
	if r == nil {
		return nil
	}
	const phaseHelp = "Per-search time spent in each optimizer phase (costing and enforce are recorded from traced runs only)."
	m := &SearchMetrics{
		OptimizeSeconds: r.Histogram("cleo_optimize_seconds",
			"End-to-end Cascades search latency per optimization."),
		TemplateHits: r.Counter("cleo_template_requests_total",
			"Memo-template cache lookups by result.", "result", "hit"),
		TemplateMisses: r.Counter("cleo_template_requests_total",
			"Memo-template cache lookups by result.", "result", "miss"),
	}
	for p := 0; p < numPhases; p++ {
		m.PhaseSeconds[p] = r.Histogram("cleo_optimize_phase_seconds", phaseHelp, "phase", phaseNames[p])
	}
	m.RuleFires = make(map[string]*obs.Counter)
	for _, name := range RuleNames() {
		m.RuleFires[name] = r.Counter("cleo_optimizer_rule_fires_total",
			"Memo expressions inserted by each transformation rule during exploration.",
			"rule", name)
	}
	return m
}

// searchObs is one search's observability state: phase accumulators plus
// the destinations (metrics and/or trace) resolved once at search start.
// It is nil when the run is neither metered nor traced, so every hot-path
// hook is a single pointer check. Accumulators are atomic because a
// parallel search stamps phases from worker goroutines.
type searchObs struct {
	metrics *SearchMetrics
	trace   *obs.Trace
	parent  obs.SpanID
	start   time.Time
	startNs int64 // trace-relative start, for span placement
	phases  [numPhases]atomic.Int64
}

// fine reports whether fine-grained (per-rule costing, enforcer build)
// stamping is on — only for traced runs, keeping the always-on overhead
// inside the benchmark guard's budget.
func (so *searchObs) fine() bool { return so != nil && so.trace != nil }

// add accumulates d into phase p (nil-safe).
func (so *searchObs) add(p int, d time.Duration) {
	if so != nil {
		so.phases[p].Add(int64(d))
	}
}

// finish records the completed search into the histograms and, when
// traced, emits the span tree: one "optimize" span with aggregate phase
// children tiled across it plus an explicit "other" residual, so the
// children sum exactly to the parent. With Parallelism > 1 phases overlap
// in wall time and their sum may exceed the total; the residual is then
// omitted rather than clamped into a lie.
func (so *searchObs) finish(res *Result) {
	total := time.Since(so.start)
	if m := so.metrics; m != nil {
		m.OptimizeSeconds.Record(total)
		if res.TemplateHit {
			m.TemplateHits.Inc()
		} else {
			m.TemplateMisses.Inc()
			m.PhaseSeconds[phaseCopyIn].Record(time.Duration(so.phases[phaseCopyIn].Load()))
			m.PhaseSeconds[phaseExplore].Record(time.Duration(so.phases[phaseExplore].Load()))
		}
		m.PhaseSeconds[phaseArbitrate].Record(time.Duration(so.phases[phaseArbitrate].Load()))
		if so.fine() {
			m.PhaseSeconds[phaseCosting].Record(time.Duration(so.phases[phaseCosting].Load()))
			m.PhaseSeconds[phaseEnforce].Record(time.Duration(so.phases[phaseEnforce].Load()))
		}
	}
	tr := so.trace
	if tr == nil {
		return
	}
	totalNs := int64(total)
	hit := "miss"
	if res.TemplateHit {
		hit = "hit"
	}
	var ruleFires uint64
	for _, n := range res.RuleFires {
		ruleFires += n
	}
	sp := tr.Add(so.parent, "optimize", so.startNs, totalNs,
		"template", hit,
		"memo_groups", strconv.Itoa(res.MemoGroups),
		"model_lookups", strconv.Itoa(res.ModelLookups),
		"rule_fires", strconv.FormatUint(ruleFires, 10),
		"cost", strconv.FormatFloat(res.Cost, 'g', 6, 64),
	)
	off := so.startNs
	var sum int64
	for p := 0; p < numPhases; p++ {
		ns := so.phases[p].Load()
		if ns <= 0 {
			continue
		}
		tr.Add(sp, phaseNames[p], off, ns)
		off += ns
		sum += ns
	}
	if rest := totalNs - sum; rest > 0 {
		tr.Add(sp, "other", off, rest)
	}
}
