package cascades

import (
	"fmt"
	"testing"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
)

// batchShim upgrades any scalar Coster with a CostBatch method, so the
// chooser's batched grid pricing can be compared against the scalar loop
// over the exact same model.
type batchShim struct{ Coster }

func (b batchShim) CostBatch(ops []*plan.Physical, out []float64) {
	for i, op := range ops {
		out[i] = b.OperatorCost(op)
	}
}

func chooserStage(partitions int) []*plan.Physical {
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.InputTemplate = "in1"
	leaf.Partitions = partitions
	leaf.Stats = plan.NodeStats{EstCard: 2e6, RowLength: 80}
	x := plan.NewPhysical(plan.PExchange, leaf)
	x.Partitions = partitions
	x.Stats = plan.NodeStats{EstCard: 2e6, RowLength: 80}
	agg := plan.NewPhysical(plan.PHashAggregate, x)
	agg.Partitions = partitions
	agg.Stats = plan.NodeStats{EstCard: 1e4, RowLength: 40}
	return []*plan.Physical{x, agg}
}

func TestChooseStagePartitionsBatchMatchesScalar(t *testing.T) {
	for _, strat := range []SamplingStrategy{Geometric, Uniform, Random, Exhaustive} {
		t.Run(strat.String(), func(t *testing.T) {
			scalar := &SamplingChooser{Cost: costmodel.Default{}, Strategy: strat, Samples: 6, Seed: 3}
			batch := &SamplingChooser{Cost: batchShim{costmodel.Default{}}, Strategy: strat, Samples: 6, Seed: 3}

			ops := chooserStage(8)
			savedParts := []int{ops[0].Partitions, ops[1].Partitions}
			wantP, wantLookups := scalar.ChooseStagePartitions(ops, 300)
			gotP, gotLookups := batch.ChooseStagePartitions(ops, 300)
			if gotP != wantP || gotLookups != wantLookups {
				t.Fatalf("batch (p=%d lookups=%d) != scalar (p=%d lookups=%d)",
					gotP, gotLookups, wantP, wantLookups)
			}
			// The batch path must not mutate the source operators.
			if ops[0].Partitions != savedParts[0] || ops[1].Partitions != savedParts[1] {
				t.Fatalf("batch path mutated operators: %d,%d", ops[0].Partitions, ops[1].Partitions)
			}
		})
	}
}

func TestStageCostsAtMatchesStageCostAt(t *testing.T) {
	ops := chooserStage(8)
	counts := []int{1, 2, 8, 32, 128}
	totals := StageCostsAt(costmodel.Default{}, ops, counts)
	for i, p := range counts {
		if want := StageCostAt(costmodel.Default{}, ops, p); totals[i] != want {
			t.Fatalf("count %d: batched total %v != scalar %v", p, totals[i], want)
		}
	}
}

// BenchmarkExprFingerprint pins the strings.Builder rewrite of Expr
// fingerprinting: run with -benchmem to see the allocation drop vs the old
// quadratic += concatenation on wide expressions.
func BenchmarkExprFingerprint(b *testing.B) {
	e := &Expr{Op: plan.LJoin, Table: "wide_table", InputTemplate: "tpl", Pred: "a=b"}
	for i := 0; i < 24; i++ {
		e.Keys = append(e.Keys, plan.Column(fmt.Sprintf("col_%02d", i)))
		e.Child = append(e.Child, GroupID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.fingerprint()
	}
}
