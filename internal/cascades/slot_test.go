package cascades

import (
	"fmt"
	"sync"
	"testing"

	"cleo/internal/plan"
)

// dedupHeavyQuery builds a shape whose parallel search dedupes heavily:
// every join explores its commuted form, and the commuted expression's
// child tasks request the same (group, props) keys as the original's, so
// with a small pool most workers end up parked on in-flight futures. This
// is exactly the shape where a parked worker must lend its semaphore slot
// back (the pool would otherwise idle at Parallelism=2 with one worker
// computing and one holding a slot just to wait).
func dedupHeavyQuery() *plan.Logical {
	clicks := plan.NewSelect(plan.NewGet("clicks_d1", "clicks_"), "recent")
	users := plan.NewGet("users_d1", "users_")
	parts := plan.NewGet("parts_d1", "parts_")
	j1 := plan.NewJoin(clicks, users, "clicks.user=users.id", "user")
	j2 := plan.NewJoin(j1, parts, "clicks.part=parts.id", "pkey")
	j3 := plan.NewJoin(j2, plan.NewAggregate(plan.NewGet("clicks_d1", "clicks_"), "user"),
		"c.user=d.user", "user")
	a := plan.NewAggregate(j3, "region")
	return plan.NewOutput(plan.NewSort(a, "region"))
}

// TestSlotLendingDedupHeavy runs the dedup-heavy shape at Parallelism=2
// under -race, repeatedly and concurrently, and requires bit-identical
// results to the sequential search. The tiny pool plus the future-heavy
// shape drives workers through the lend/re-acquire path in optimizeGroup.
func TestSlotLendingDedupHeavy(t *testing.T) {
	cat := testCatalog()
	q := dedupHeavyQuery()
	seq := defaultOptimizer(cat)
	seq.Parallelism = 1
	want, err := seq.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}

	par := defaultOptimizer(cat)
	par.Parallelism = 2
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				res, err := par.Optimize(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Plan.String() != want.Plan.String() || res.Cost != want.Cost {
					errs <- fmt.Errorf("parallel result diverged from sequential:\nseq: %s\npar: %s",
						want.Plan, res.Plan)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSlotLendingOptimizeAll drives the shared-pool batch path (spawned
// query tasks hold slots for their whole search, so their future waits all
// go through the lending path) at Parallelism=2.
func TestSlotLendingOptimizeAll(t *testing.T) {
	cat := testCatalog()
	queries := []*plan.Logical{dedupHeavyQuery(), joinQuery(), dedupHeavyQuery(), simpleQuery()}
	seq := defaultOptimizer(cat)
	seq.Parallelism = 1
	wants, err := seq.OptimizeAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	par := defaultOptimizer(cat)
	par.Parallelism = 2
	for i := 0; i < 8; i++ {
		got, err := par.OptimizeAll(queries)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			if got[qi].Plan.String() != wants[qi].Plan.String() || got[qi].Cost != wants[qi].Cost {
				t.Fatalf("query %d diverged under the shared pool", qi)
			}
		}
	}
}
