package cascades

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cleo/internal/plan"
)

// Recurring-job template reuse (the memo-sharing optimization the paper's
// workload motivates): production traffic is dominated by recurring jobs
// whose logical plan repeats with varying parameters, yet a stock search
// rebuilds an identical memo — copy-in plus logical exploration — for every
// instance. A Template freezes that parameter-independent part of one
// finished search: the memo's group structure and the exploration results
// (every group's expression set after the transformation rules ran to
// fixpoint — join reorderings, predicate and projection pushdowns).
// Copy-in and exploration read only the
// logical plan — never the catalog, statistics, parameters or cost model —
// so the snapshot is shared read-only by later instances, which re-run just
// the instance-dependent half of the search: implementation, costing,
// enforcement and partition arbitration with their own statistics, job
// seed, parameters and model version.

// Template is an immutable snapshot of one logical plan's fully explored
// memo. It is safe to share across concurrent searches: after exploration
// reaches fixpoint nothing writes the memo (group registration and
// expression insertion happen only during copy-in and under each group's
// explore Once, both of which have completed).
type Template struct {
	memo *Memo
	// root is the logical plan the memo was built from (a private deep
	// copy). A cache hit verifies the query against it structurally: the
	// 64-bit signature in the key is a fast filter, not proof of identity,
	// and a collision must degrade to a miss — never to serving another
	// plan's search space.
	root *plan.Logical
}

// Groups reports the snapshot's memo size, for diagnostics.
func (t *Template) Groups() int { return t.memo.NumGroups() }

// TemplateKey identifies one cache slot. The logical-plan signature names
// the template; every other field is an invalidation fence — the snapshot
// itself depends on none of them, but folding them into the key guarantees
// a configuration or model change can never serve search state from before
// it (and makes the cache observably miss, which the serving layer's
// counters surface):
//
//   - CatalogEpoch advances on every RegisterTable / selectivity override,
//     so statistics updates re-explore from scratch.
//   - Model carries the cost model's identity (the learned predictor
//     pointer, hot-swapped per version; the model name for the analytical
//     costers), so a published model version starts from a fresh template.
//   - MaxPartitions / Parallelism / ResourceAware pin the search
//     configuration, so a per-request parallelism override or a
//     partition-cap change misses rather than reusing.
//   - Rules carries the transformation-rule set's identity plus the memo
//     budget. The snapshot IS the exploration result, so a changed rule
//     set (or budget) must rebuild it — reusing a snapshot explored under
//     different rules would silently search the wrong expression space.
type TemplateKey struct {
	Sig           plan.Signature
	CatalogEpoch  uint64
	MaxPartitions int
	Parallelism   int
	ResourceAware bool
	Model         any
	Rules         string
}

// TemplateIdentifier is an optional Coster upgrade: implementations report
// a comparable identity of the underlying model (the learned coster returns
// its predictor pointer, so a hot-swap changes the identity). Costers
// without it key by Name().
type TemplateIdentifier interface {
	TemplateIdentity() any
}

// costerIdentity derives the template-key model component from a coster.
func costerIdentity(c Coster) any {
	if ti, ok := c.(TemplateIdentifier); ok {
		return ti.TemplateIdentity()
	}
	return c.Name()
}

// DefaultTemplateCacheSize is the per-cache entry bound used when a
// capacity of 0 is requested. Snapshots are small (one group per logical
// node plus budget-capped rule-created expressions), so this comfortably
// covers a tenant's recurring templates.
const DefaultTemplateCacheSize = 128

// TemplateCacheStats snapshots the cache counters. The JSON names carry the
// template_ prefix so the struct embeds flat into the serving layer's
// per-tenant stats.
type TemplateCacheStats struct {
	// TemplateHits counts optimizations that reused a snapshot.
	TemplateHits uint64 `json:"template_hits"`
	// TemplateMisses counts optimizations that built (and published) a
	// fresh snapshot.
	TemplateMisses uint64 `json:"template_misses"`
	// TemplateEntries is the current snapshot count.
	TemplateEntries int `json:"template_entries"`
	// TemplateInvalidations counts wholesale purges (model hot-swaps).
	TemplateInvalidations uint64 `json:"template_invalidations"`
}

// TemplateCache is a bounded LRU of memo templates, keyed by TemplateKey.
// All methods are safe for concurrent use; one cache serves every
// optimization of a tenant, so capacity bounds the tenant's snapshot
// memory.
type TemplateCache struct {
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64

	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used *templateEntry
	m        map[TemplateKey]*list.Element
}

type templateEntry struct {
	key  TemplateKey
	tmpl *Template
}

// NewTemplateCache builds a cache bounded to capacity entries
// (0 = DefaultTemplateCacheSize).
func NewTemplateCache(capacity int) *TemplateCache {
	if capacity <= 0 {
		capacity = DefaultTemplateCacheSize
	}
	return &TemplateCache{
		capacity: capacity,
		ll:       list.New(),
		m:        make(map[TemplateKey]*list.Element, capacity),
	}
}

// Get returns the snapshot for k whose plan structurally equals root,
// marking it most recently used. A key present with a different plan — a
// signature collision — counts as a miss; the subsequent Put replaces it.
func (c *TemplateCache) Get(k TemplateKey, root *plan.Logical) (*Template, bool) {
	c.mu.Lock()
	var tmpl *Template
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		tmpl = el.Value.(*templateEntry).tmpl
	}
	c.mu.Unlock()
	if tmpl == nil || !tmpl.root.Equal(root) {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return tmpl, true
}

// Put installs (or refreshes) the snapshot for k, evicting the least
// recently used entries beyond capacity. Concurrent misses for the same
// template may Put twice; the snapshots are interchangeable, so last wins.
func (c *TemplateCache) Put(k TemplateKey, t *Template) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*templateEntry).tmpl = t
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&templateEntry{key: k, tmpl: t})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*templateEntry).key)
	}
}

// Invalidate drops every snapshot. The key fences already prevent a new
// model version or statistics epoch from ever hitting an old entry; the
// purge on top reclaims the dead entries immediately instead of waiting
// for LRU eviction.
func (c *TemplateCache) Invalidate() {
	c.mu.Lock()
	c.ll.Init()
	c.m = make(map[TemplateKey]*list.Element, c.capacity)
	c.mu.Unlock()
	c.invalidations.Add(1)
}

// Stats snapshots the counters.
func (c *TemplateCache) Stats() TemplateCacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return TemplateCacheStats{
		TemplateHits:          c.hits.Load(),
		TemplateMisses:        c.misses.Load(),
		TemplateEntries:       entries,
		TemplateInvalidations: c.invalidations.Load(),
	}
}
