package cascades

import (
	"time"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
)

// enforce wraps the candidate with enforcer operators (Exchange for
// partitioning, Sort for ordering) until the required properties are met,
// and returns the final root and its delivered properties. It mutates only
// the candidate's private subtree, so independent candidates enforce
// concurrently.
func (s *search) enforce(root *plan.Physical, delivered, req Props) (*plan.Physical, Props, error) {
	var err error
	if !delivered.Part.Satisfies(req.Part) {
		root, err = s.addExchange(root, req.Part)
		if err != nil {
			return nil, Props{}, err
		}
		delivered.Part = req.Part
		delivered.Order = nil // hash shuffles destroy ordering
	}
	if !delivered.Order.Satisfies(req.Order) {
		var t0 time.Time
		if fine := s.obs.fine(); fine {
			t0 = time.Now()
		}
		sort := plan.NewPhysical(plan.PSort, root)
		sort.Keys = append([]plan.Column(nil), req.Order...)
		sort.Partitions = root.Partitions
		if err := s.catalog.AnnotateOne(sort, s.jobSeed); err != nil {
			return nil, Props{}, err
		}
		s.recost(sort)
		if !t0.IsZero() {
			s.obs.add(phaseEnforce, time.Since(t0))
		}
		root = sort
		delivered.Order = req.Order
	}
	return root, delivered, nil
}

// addExchange inserts a shuffle above child delivering the required
// partitioning. The exchange's partition count comes from the local
// heuristic (stock SCOPE); in resource-aware mode, the now-completed stage
// below the exchange is partition-optimized first (step 9 in Figure 8a).
func (s *search) addExchange(child *plan.Physical, part Partitioning) (*plan.Physical, error) {
	if s.resourceAware {
		s.optimizeTopStage(child)
	}
	// Exchange construction below (annotate, derive, recost) is the
	// enforcement phase proper; the arbitration above times itself, so the
	// two stay disjoint on traces.
	var t0 time.Time
	if fine := s.obs.fine(); fine {
		t0 = time.Now()
	}
	x := plan.NewPhysical(plan.PExchange, child)
	if part.Kind == HashPartition {
		x.Keys = append([]plan.Column(nil), part.Keys...)
	}
	if err := s.catalog.AnnotateOne(x, s.jobSeed); err != nil {
		return nil, err
	}
	if part.Kind == SinglePartition {
		x.Partitions = 1
		x.FixedPartitions = true
	} else {
		x.Partitions = costmodel.DerivePartitions(x, s.maxPartitions)
	}
	s.recost(x)
	if !t0.IsZero() {
		s.obs.add(phaseEnforce, time.Since(t0))
	}
	return x, nil
}

// optimizeTopStage runs partition optimization on the stage containing
// root (the top stage of the subtree). Co-partitioned joins inside the
// stage couple it to their other side's stage: those stages are optimized
// jointly, and if any coupled partitioning operator is fixed by storage
// layout, the fixed count is adopted as a required property without
// exploration (step 2 in Figure 8a).
func (s *search) optimizeTopStage(root *plan.Physical) {
	if !s.resourceAware {
		return
	}
	if so := s.obs; so != nil {
		// Arbitration is coarse enough (a handful of calls per search, each
		// spanning chooser exploration and batched re-costing) that the
		// always-on tier can afford to time it.
		t0 := time.Now()
		s.arbitrateStage(root)
		so.add(phaseArbitrate, time.Since(t0))
		return
	}
	s.arbitrateStage(root)
}

// arbitrateStage is optimizeTopStage's body: the paper's partition
// optimization plus the anchored final arbitration.
func (s *search) arbitrateStage(root *plan.Physical) {
	stageOf := plan.StageOf(root)
	stage := stageOf[root]
	if stage == nil || len(stage.Ops) == 0 {
		return
	}
	stages, fixed := coupledStages(stage, stageOf)
	if fixed > 0 {
		// A coupled stage is pinned: adopt its count as required.
		for _, st := range stages {
			if !st.Ops[0].FixedPartitions {
				setStagePartitions(st, fixed)
				s.recostAll(st.Ops)
			}
		}
		return
	}
	var ops []*plan.Physical
	for _, st := range stages {
		ops = append(ops, st.Ops...)
	}
	// Guard rail (Section 6.7): learned models extrapolate poorly far
	// outside the partition counts seen in training, so exploration is
	// bounded to a window around the heuristic-derived count. The anchor
	// is recomputed from statistics (not the current count) so repeated
	// optimization cannot ratchet the window, and it takes the maximum
	// over all coupled stages — a co-partitioned join of a tiny and a
	// huge input must size for the huge one.
	cur := 1
	for _, st := range stages {
		if h := costmodel.DerivePartitions(st.Ops[0], s.maxPartitions); h > cur {
			cur = h
		}
	}
	// The window is asymmetric: heuristics over-partition (Section 6.7:
	// "SCOPE jobs tend to over-partition ... and leverage the massive
	// scale-out"), so the payoff is below the anchor; going far above it
	// only adds scheduling overhead risk.
	explMax := cur * 2
	if explMax < 16 {
		explMax = 16
	}
	if explMax > s.maxPartitions {
		explMax = s.maxPartitions
	}
	p, lookups := s.chooser.ChooseStagePartitions(ops, explMax)
	s.lookups.Add(int64(lookups))
	if p < cur/4 {
		p = cur / 4
	}
	if p < 1 {
		p = 1
	}
	if p > explMax {
		p = explMax
	}
	// Final arbitration: accept the explored count only if the cost model
	// prices the stage cheaper there than at the anchor. Both counts are
	// priced in one batched call.
	if p != cur && cur <= explMax {
		s.lookups.Add(int64(2 * len(ops)))
		counts := [2]int{p, cur}
		var totals [2]float64
		stageCostsInto(s.cost, ops, counts[:], totals[:])
		if totals[0] > totals[1] {
			p = cur
		}
	}
	for _, st := range stages {
		setStagePartitions(st, p)
	}
	s.recostAll(ops)
}

// coupledStages returns the transitive set of stages that must share a
// partition count with st (via co-partitioned joins), plus the fixed count
// imposed by any pinned member (0 if none).
func coupledStages(st *plan.Stage, stageOf map[*plan.Physical]*plan.Stage) ([]*plan.Stage, int) {
	seen := map[*plan.Stage]bool{st: true}
	queue := []*plan.Stage{st}
	var out []*plan.Stage
	fixed := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		if cur.Ops[0].FixedPartitions && cur.Ops[0].Partitions > fixed {
			fixed = cur.Ops[0].Partitions
		}
		for _, op := range cur.Ops {
			if op.Op != plan.PHashJoin && op.Op != plan.PMergeJoin {
				continue
			}
			for _, ch := range op.Children {
				cs := stageOf[ch]
				if cs != nil && !seen[cs] {
					seen[cs] = true
					queue = append(queue, cs)
				}
			}
		}
	}
	return out, fixed
}

func setStagePartitions(stage *plan.Stage, p int) {
	stage.Partitions = p
	for _, op := range stage.Ops {
		op.Partitions = p
	}
}

// alignPartitions makes both join inputs agree on a partition count, since
// a co-partitioned join requires its children's partitions to line up.
//
// Stock SCOPE derives a count from local statistics and repartitions both
// sides to it (the paper's Q8 observation). In resource-aware mode the
// optimizer compares concrete alternatives — adopt the left count, adopt
// the right count — and keeps the cheaper, which lets a pre-partitioned
// input's layout win and drop a shuffle (the paper's Q8/Q9 improvement).
func (s *search) alignPartitions(e *Expr, lp, rp **plan.Physical) error {
	l, r := *lp, *rp
	if l.Partitions == r.Partitions {
		return nil
	}
	part := Partitioning{Kind: HashPartition, Keys: e.Keys}

	if !s.resourceAware {
		// Derive the count from the bigger input's statistics, like the
		// stage-local heuristic would, and force both sides to it.
		big := l
		if r.Stats.EstCard*r.Stats.RowLength > l.Stats.EstCard*l.Stats.RowLength {
			big = r
		}
		probe := plan.NewPhysical(plan.PExchange, big)
		probe.Stats = big.Stats
		target := costmodel.DerivePartitions(probe, s.maxPartitions)
		var err error
		*lp, err = s.retarget(l, part, target)
		if err != nil {
			return err
		}
		*rp, err = s.retarget(r, part, target)
		return err
	}

	// Resource-aware: compare concrete alternatives — adopt the left
	// count, the right count, or the statistics-derived heuristic — and
	// keep the cheapest. A floor derived from the inputs' sizes keeps
	// alignment from funnelling a large shuffle into a handful of
	// partitions on a model misprediction (Section 6.7 guard rails).
	heuristic := func(side *plan.Physical) int {
		probe := plan.NewPhysical(plan.PExchange, side)
		probe.Stats = side.Stats
		return costmodel.DerivePartitions(probe, s.maxPartitions)
	}
	hL, hR := heuristic(l), heuristic(r)
	hMax := hL
	if hR > hMax {
		hMax = hR
	}
	floor := hMax / 10
	if floor < 1 {
		floor = 1
	}
	seen := map[int]bool{}
	var candidates []int
	for _, c := range []int{l.Partitions, r.Partitions, hMax} {
		if c < floor {
			c = floor
		}
		if c > s.maxPartitions {
			c = s.maxPartitions
		}
		if !seen[c] {
			seen[c] = true
			candidates = append(candidates, c)
		}
	}

	bestCost := 0.0
	var bestL, bestR *plan.Physical
	for _, target := range candidates {
		cl, err := s.retarget(l.Clone(), part, target)
		if err != nil {
			return err
		}
		cr, err := s.retarget(r.Clone(), part, target)
		if err != nil {
			return err
		}
		cost := cl.TotalCostEst() + cr.TotalCostEst()
		if bestL == nil || cost < bestCost {
			bestCost = cost
			bestL, bestR = cl, cr
		}
	}
	*lp, *rp = bestL, bestR
	return nil
}

// retarget makes the subtree deliver `target` partitions at its top:
// adjustable tops (non-fixed Exchanges) are re-pointed; otherwise a fresh
// Exchange is inserted.
func (s *search) retarget(root *plan.Physical, part Partitioning, target int) (*plan.Physical, error) {
	if root.Partitions == target {
		return root, nil
	}
	if root.Op == plan.PExchange && !root.FixedPartitions {
		stage := plan.StageOf(root)[root]
		setStagePartitions(stage, target)
		s.recostAll(stage.Ops)
		return root, nil
	}
	x, err := s.addExchange(root, part)
	if err != nil {
		return nil, err
	}
	stage := plan.StageOf(x)[x]
	setStagePartitions(stage, target)
	s.recostAll(stage.Ops)
	return x, nil
}
