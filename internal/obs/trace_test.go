package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestTraceTreeRoundTrip builds a span tree, renders it, and round-trips
// it through JSON — the exact path a traced /v1/query response takes.
func TestTraceTreeRoundTrip(t *testing.T) {
	tr := NewTrace(0)
	if len(tr.ID()) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", tr.ID())
	}
	root := tr.Begin(0, "optimize")
	tr.SetAttr(root, "template", "hit")
	child := tr.Add(root, "costing", 0, int64(2*time.Millisecond), "rows", "64")
	if child == 0 {
		t.Fatal("Add returned 0")
	}
	tr.Add(child, "batch", 0, int64(time.Millisecond))
	tr.End(root)
	tr.Add(0, "execute", -1, int64(3*time.Millisecond))

	tree := tr.Tree()
	if tree.TraceID != tr.ID() {
		t.Fatalf("tree id %q != trace id %q", tree.TraceID, tr.ID())
	}
	if len(tree.Spans) != 2 {
		t.Fatalf("got %d roots, want 2 (optimize, execute)", len(tree.Spans))
	}
	opt := tree.Spans[0]
	if opt.Name != "optimize" || opt.Attrs["template"] != "hit" {
		t.Fatalf("root span = %+v", opt)
	}
	if opt.DurationNs < 0 {
		t.Fatalf("ended root has negative duration %d", opt.DurationNs)
	}
	if len(opt.Children) != 1 || opt.Children[0].Name != "costing" {
		t.Fatalf("optimize children = %+v", opt.Children)
	}
	costing := opt.Children[0]
	if costing.Attrs["rows"] != "64" || costing.DurationNs != int64(2*time.Millisecond) {
		t.Fatalf("costing span = %+v", costing)
	}
	if len(costing.Children) != 1 || costing.Children[0].Name != "batch" {
		t.Fatalf("costing children = %+v", costing.Children)
	}

	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	rt, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(rt) != string(data) {
		t.Fatalf("JSON round trip changed:\n%s\nvs\n%s", data, rt)
	}
}

// TestTraceSpanLimit checks the bound: past the limit spans are dropped
// and counted, never appended.
func TestTraceSpanLimit(t *testing.T) {
	tr := NewTrace(2)
	a := tr.Begin(0, "a")
	b := tr.Begin(a, "b")
	if a == 0 || b == 0 {
		t.Fatal("spans under the limit were rejected")
	}
	if got := tr.Begin(b, "c"); got != 0 {
		t.Fatalf("span over the limit got id %d", got)
	}
	tr.Add(0, "d", 0, 1)
	tree := tr.Tree()
	if tree.DroppedSpans != 2 {
		t.Fatalf("dropped = %d, want 2", tree.DroppedSpans)
	}
	if len(tree.Spans) != 1 || len(tree.Spans[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", tree.Spans)
	}
}

// TestTraceNilSafety: every operation must be a no-op on a nil trace so
// instrumented code never branches.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	if tr.Now() != 0 {
		t.Fatal("nil trace Now != 0")
	}
	id := tr.Begin(0, "x")
	if id != 0 {
		t.Fatal("nil trace began a span")
	}
	tr.End(id)
	tr.SetAttr(id, "k", "v")
	if tr.Add(0, "y", 0, 1) != 0 {
		t.Fatal("nil trace added a span")
	}
	if tr.Tree() != nil {
		t.Fatal("nil trace rendered a tree")
	}
}
