package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistogramBuckets is the fixed bucket count of every Histogram:
// buckets 0..NumHistogramBuckets-2 have upper bounds of 2^i microseconds
// (1µs, 2µs, 4µs, ... ~9min), the last bucket is +Inf. Log-scaled powers
// of two cover the whole latency range the system sees — sub-microsecond
// cache probes to multi-second retrains — with constant memory and an
// allocation-free, loop-free record path.
const NumHistogramBuckets = 31

// Histogram is a fixed-bucket log-scaled latency histogram. Record is
// safe for concurrent use and allocation-free: one bit-scan to find the
// bucket, then three atomic adds. The zero value is ready to use.
type Histogram struct {
	buckets [NumHistogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i µs (values at a boundary land in the bucket it bounds).
func bucketIndex(d time.Duration) int {
	us := uint64(d) / 1000 // durations under 1µs land in bucket 0
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // ceil(log2(us)) for us >= 2
	if i >= NumHistogramBuckets {
		return NumHistogramBuckets - 1
	}
	return i
}

// BucketUpperBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the last bucket).
func BucketUpperBound(i int) float64 {
	if i >= NumHistogramBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) / 1e6
}

// Record adds one observation. Negative durations are clamped to zero
// (monotonic clock misuse should never corrupt the sum).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// exposition and aggregation. Buckets hold per-bucket (non-cumulative)
// counts; exposition renders them cumulatively.
type HistogramSnapshot struct {
	Buckets [NumHistogramBuckets]uint64
	Count   uint64
	SumNs   int64
}

// Snapshot copies the current state. Concurrent Records may land between
// the bucket and count reads; the skew is at most the records in flight
// during the scrape, which Prometheus semantics tolerate.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	return s
}

// Merge adds other into s — the aggregation used when summing the same
// metric across shards or instances. Bucket widths are fixed package-wide,
// so merging is exact per-bucket addition.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.SumNs += other.SumNs
}

// Quantile estimates the q-quantile (0..1) in seconds from the bucket
// counts, attributing each bucket's mass to its upper bound — the same
// conservative estimate Prometheus's histogram_quantile makes at bucket
// resolution. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if seen > rank {
			return BucketUpperBound(i)
		}
	}
	return BucketUpperBound(NumHistogramBuckets - 1)
}
