package obs

import (
	"flag"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// HELP/TYPE headers once per metric, series sorted by name then labels,
// cumulative le-labelled histogram buckets, _sum in seconds.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests by route and class.",
		"route", "query", "class", "2xx").Add(3)
	r.Counter("test_requests_total", "", "route", "query", "class", "5xx").Inc()
	r.Gauge("test_inflight", "In-flight requests.").Set(2)
	r.GaugeFunc("test_ratio", "Cache hit ratio.",
		func() float64 { return 0.25 }, "cache", "prediction")
	h := r.Histogram("test_latency_seconds", "Request latency.")
	h.Record(time.Microsecond)
	h.Record(3 * time.Microsecond)
	h.Record(time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestRegistrySharedInstrument checks that the same name+labels from two
// registration sites share one instrument — the property that merges the
// engine's and the serving layer's retrain timers into one series.
func TestRegistrySharedInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_shared_total", "Shared.")
	b := r.Counter("test_shared_total", "ignored (first help wins)")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	b.Inc()
	if a.Load() != 2 {
		t.Fatalf("shared counter = %d, want 2", a.Load())
	}
	if r.Counter("test_shared_total", "", "tenant", "x") == a {
		t.Fatal("different labels returned the same counter")
	}
	// A nil registry hands out nil instruments, and nil instruments are
	// no-ops — the whole layer disappears when metrics are off.
	var nilReg *Registry
	nilReg.Counter("x", "").Inc()
	nilReg.Gauge("x", "").Set(1)
	nilReg.Histogram("x", "").Record(time.Second)
}

// TestRegistryConcurrentFirstUse races first-use registration of the same
// name+labels from many goroutines (concurrent tenant creation registers
// the same unlabeled series); run with -race. Every caller must get the
// one shared instrument — a loser keeping an orphaned handle would record
// into a series that never appears in /metrics.
func TestRegistryConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	const n = 8
	var start, wg sync.WaitGroup
	start.Add(1)
	counters := make([]*Counter, n)
	hists := make([]*Histogram, n)
	gauges := make([]*Gauge, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			counters[i] = r.Counter("test_first_use_total", "first-use race")
			hists[i] = r.Histogram("test_first_use_seconds", "first-use race")
			gauges[i] = r.Gauge("test_first_use_gauge", "first-use race")
			counters[i].Inc()
			hists[i].Record(time.Microsecond)
			r.GaugeFunc("test_first_use_fn", "first-use race", func() float64 { return 1 })
		}(i)
	}
	start.Done()
	wg.Wait()
	for i := 1; i < n; i++ {
		if counters[i] != counters[0] || hists[i] != hists[0] || gauges[i] != gauges[0] {
			t.Fatalf("goroutine %d got a distinct instrument", i)
		}
	}
	if got := counters[0].Load(); got != n {
		t.Fatalf("shared counter = %d, want %d (orphaned handle lost increments)", got, n)
	}
	if got := hists[0].Count(); got != n {
		t.Fatalf("shared histogram count = %d, want %d", got, n)
	}
}

// TestRegistryConcurrentRecordAndScrape races recorders against scrapers;
// run with -race. Scrapes must always render parseable, complete output.
func TestRegistryConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "concurrency test")
	c := r.Counter("test_conc_total", "concurrency test")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Record(time.Microsecond)
					c.Inc()
					// Late registration must not corrupt in-flight scrapes.
					r.Gauge("test_conc_gauge", "late registration").Set(1)
					// Rebinding a derived gauge races against scrapes
					// reading gaugeFn — both must stay synchronized.
					r.GaugeFunc("test_conc_fn", "rebind race", func() float64 { return 1 })
				}
			}
		}()
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for i := 0; i < 15; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("content type %q", ct)
		}
		body := string(raw)
		if !strings.Contains(body, "test_conc_seconds_count") ||
			!strings.Contains(body, "test_conc_total") {
			t.Fatalf("scrape missing series:\n%s", body)
		}
	}
	close(stop)
	wg.Wait()
	if h.Count() != c.Load() {
		t.Fatalf("histogram count %d != counter %d", h.Count(), c.Load())
	}
}
