// Package obs is the serving system's dependency-free observability
// core: atomic counters and gauges, fixed-bucket log-scaled latency
// histograms that are allocation-free on hot paths, a registry with
// Prometheus text-format exposition, and a lightweight bounded span
// tracer. Every layer of the system (HTTP serving, the Cascades search,
// learned batch costing, durable state) records into instruments handed
// out by one shared Registry; GET /metrics renders the registry and the
// opt-in per-query trace renders an EXPLAIN ANALYZE-style span tree.
//
// The package imports only the standard library, so any internal package
// may depend on it without cycles, and instruments are cheap enough for
// optimizer hot paths: a Counter add is one atomic add, a Histogram
// record is a bit-scan plus three atomic adds, and every instrument
// handle is resolved once at registration — never per operation.
package obs

import "sync/atomic"

// Counter is a monotonically increasing counter. The zero value is ready
// to use; instruments obtained from a Registry are shared by name+labels.
// All methods are no-ops on a nil receiver, so instruments handed out by
// a nil (disabled) Registry need no call-site checks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer-valued gauge (current in-flight requests, live
// entries, ...). The zero value is ready to use; methods are no-ops on a
// nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
