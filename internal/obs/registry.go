package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry hands out shared metric instruments and renders them in
// Prometheus text exposition format. Instruments are keyed by metric name
// plus rendered label pairs: two packages asking for the same name+labels
// get the same underlying instrument, which is how e.g. retrain duration
// is recorded by both the engine and the serving layer into one series.
//
// Get-or-create happens once per instrument (callers hold on to the
// returned handle); the hot path never touches the registry lock.
type Registry struct {
	mu      sync.Mutex
	help    map[string]string // metric name -> help text (first registration wins)
	typ     map[string]string // metric name -> counter|gauge|histogram
	series  map[string]*series
	ordered []*series // registration order; sorted at exposition
}

type series struct {
	name      string
	labels    string // rendered {k="v",...} or ""
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		help:   make(map[string]string),
		typ:    make(map[string]string),
		series: make(map[string]*series),
	}
}

// renderLabels turns alternating key/value pairs into a deterministic
// `{k="v",...}` string (keys sorted). Panics on an odd pair count —
// instrument registration is programmer-controlled, not data-driven.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: odd label key/value count")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) get(name, help, typ string, labels []string) *series {
	lbl := renderLabels(labels)
	key := name + lbl
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		return s
	}
	if have, ok := r.typ[name]; ok && have != typ {
		panic("obs: metric " + name + " registered as both " + have + " and " + typ)
	}
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
		r.typ[name] = typ
	}
	s := &series{name: name, labels: lbl}
	// Allocate the instrument here, while r.mu is held: concurrent first-use
	// registrations of the same name+labels must agree on one instrument.
	switch typ {
	case "counter":
		s.counter = &Counter{}
	case "gauge":
		s.gauge = &Gauge{}
	case "histogram":
		s.histogram = &Histogram{}
	}
	r.series[key] = s
	r.ordered = append(r.ordered, s)
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
// Labels are alternating key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, help, "counter", labels).counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, help, "gauge", labels).gauge
}

// GaugeFunc registers a derived gauge evaluated at scrape time (cache hit
// ratios, live entry counts). Re-registering the same name+labels replaces
// the function — recovery and hot-swap paths may rebind freely.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	s := r.get(name, help, "gauge", labels)
	r.mu.Lock()
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for name+labels, creating it on first
// use. Conventionally name ends in _seconds; exposition renders buckets in
// seconds.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, help, "histogram", labels).histogram
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4), grouped by metric name with HELP and
// TYPE headers, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Snapshot series by value while holding the lock: gaugeFn may be
	// rebound concurrently by GaugeFunc, and instrument pointers must not
	// be read unsynchronized. The instruments themselves are atomic.
	all := make([]series, len(r.ordered))
	for i, s := range r.ordered {
		all[i] = *s
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	typ := make(map[string]string, len(r.typ))
	for k, v := range r.typ {
		typ[k] = v
	}
	r.mu.Unlock()

	sort.SliceStable(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})

	var b strings.Builder
	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			if h := help[s.name]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, typ[s.name])
			lastName = s.name
		}
		switch {
		case s.counter != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.counter.Load())
		case s.gaugeFn != nil:
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatFloat(s.gaugeFn()))
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, s.labels, s.gauge.Load())
		case s.histogram != nil:
			writeHistogram(&b, s.name, s.labels, s.histogram.Snapshot())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders cumulative le-labelled buckets plus _sum/_count.
func writeHistogram(b *strings.Builder, name, labels string, snap HistogramSnapshot) {
	var cum uint64
	for i := 0; i < NumHistogramBuckets; i++ {
		cum += snap.Buckets[i]
		le := "+Inf"
		if i < NumHistogramBuckets-1 {
			le = formatFloat(BucketUpperBound(i))
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLabel(labels, "le", le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(float64(snap.SumNs)/1e9))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, snap.Count)
}

// withLabel splices one more label into an already-rendered label set.
func withLabel(labels, k, v string) string {
	pair := k + `="` + v + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Handler returns an http.Handler serving the Prometheus exposition —
// mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
