package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// SpanID identifies a span within one Trace. 0 means "no span" — every
// operation is nil-safe against both a nil Trace and a zero SpanID, so
// instrumented code never branches on whether tracing is on.
type SpanID int

// Trace is a lightweight bounded per-request tracer: one trace ID, a flat
// span list with parent links and monotonic timestamps, capped at a fixed
// span count so a pathological plan cannot balloon a response. It is safe
// for concurrent use (the parallel search records from worker goroutines).
type Trace struct {
	id    string
	start time.Time
	limit int

	mu      sync.Mutex
	spans   []span
	dropped int
}

type span struct {
	name    string
	parent  SpanID
	startNs int64
	durNs   int64
	attrs   []string // alternating key/value
}

// DefaultSpanLimit bounds spans per trace unless NewTrace is told otherwise.
const DefaultSpanLimit = 256

// NewTrace starts a trace with a fresh random ID. limit <= 0 uses
// DefaultSpanLimit.
func NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	var b [8]byte
	rand.Read(b[:])
	return &Trace{
		id:    hex.EncodeToString(b[:]),
		start: time.Now(),
		limit: limit,
	}
}

// ID returns the trace ID (empty for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// now returns nanoseconds since the trace started (monotonic).
func (t *Trace) now() int64 { return int64(time.Since(t.start)) }

// Now returns nanoseconds since the trace started (monotonic clock),
// 0 for a nil trace — the timestamp base for Add'ing pre-measured spans.
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// Begin opens a span under parent (0 = root) and returns its ID, or 0 if
// the trace is nil or full.
func (t *Trace) Begin(parent SpanID, name string) SpanID {
	if t == nil {
		return 0
	}
	start := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.limit {
		t.dropped++
		return 0
	}
	t.spans = append(t.spans, span{name: name, parent: parent, startNs: start, durNs: -1})
	return SpanID(len(t.spans))
}

// End closes the span (no-op for 0 or a nil trace).
func (t *Trace) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	end := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.spans[id-1]
	s.durNs = end - s.startNs
}

// Add records an already-measured interval as a complete span — how the
// search's phase accumulators report aggregate per-phase time without
// holding spans open across the hot path. startNs is relative to the trace
// start; pass -1 to stamp "now" with the given duration ending now.
func (t *Trace) Add(parent SpanID, name string, startNs, durNs int64, attrs ...string) SpanID {
	if t == nil {
		return 0
	}
	if startNs < 0 {
		startNs = t.now() - durNs
		if startNs < 0 {
			startNs = 0
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.limit {
		t.dropped++
		return 0
	}
	t.spans = append(t.spans, span{name: name, parent: parent, startNs: startNs, durNs: durNs, attrs: attrs})
	return SpanID(len(t.spans))
}

// SetAttr attaches a key/value attribute to an open or closed span.
func (t *Trace) SetAttr(id SpanID, key, value string) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.spans[id-1]
	s.attrs = append(s.attrs, key, value)
}

// SpanJSON is one node of the rendered span tree.
type SpanJSON struct {
	Name       string            `json:"name"`
	StartNs    int64             `json:"start_ns"`
	DurationNs int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the EXPLAIN ANALYZE-style tree returned on traced queries.
type TraceJSON struct {
	TraceID      string      `json:"trace_id"`
	TotalNs      int64       `json:"total_ns"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []*SpanJSON `json:"spans"`
}

// Tree renders the span tree. Spans still open are stamped with a
// duration up to now; children keep recording order.
func (t *Trace) Tree() *TraceJSON {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &TraceJSON{TraceID: t.id, TotalNs: now, DroppedSpans: t.dropped}
	nodes := make([]*SpanJSON, len(t.spans))
	for i, s := range t.spans {
		dur := s.durNs
		if dur < 0 {
			dur = now - s.startNs
		}
		n := &SpanJSON{Name: s.name, StartNs: s.startNs, DurationNs: dur}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]string, len(s.attrs)/2)
			for j := 0; j+1 < len(s.attrs); j += 2 {
				n.Attrs[s.attrs[j]] = s.attrs[j+1]
			}
		}
		nodes[i] = n
	}
	for i, s := range t.spans {
		if s.parent > 0 && int(s.parent) <= len(nodes) {
			p := nodes[s.parent-1]
			p.Children = append(p.Children, nodes[i])
		} else {
			out.Spans = append(out.Spans, nodes[i])
		}
	}
	return out
}
