package obs

import (
	"math"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-scaled bucket math: bucket i covers
// (2^(i-1), 2^i] microseconds, bucket 0 covers (0, 1µs], and everything
// past the last finite bound lands in the +Inf bucket.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 0}, // sub-µs remainder truncates
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{time.Second, 20},                    // 2^20 µs ≈ 1.05 s
		{time.Hour, NumHistogramBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every recorded duration must fall at or under its bucket's upper
	// bound — the invariant Prometheus quantile math relies on.
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond,
		777 * time.Microsecond, time.Second, 90 * time.Second} {
		ub := BucketUpperBound(bucketIndex(d))
		if d.Seconds() > ub {
			t.Errorf("duration %v exceeds its bucket upper bound %v", d, ub)
		}
	}
	if !math.IsInf(BucketUpperBound(NumHistogramBuckets-1), 1) {
		t.Errorf("last bucket upper bound = %v, want +Inf", BucketUpperBound(NumHistogramBuckets-1))
	}
	if got := BucketUpperBound(0); got != 1e-6 {
		t.Errorf("first bucket upper bound = %v, want 1e-6", got)
	}
}

func TestHistogramRecordAndSnapshot(t *testing.T) {
	var h Histogram
	// Negative durations clamp to zero (first bucket, no sum corruption).
	h.Record(-time.Second)
	h.Record(time.Microsecond)
	h.Record(2 * time.Microsecond)
	h.Record(2 * time.Microsecond)
	h.Record(time.Second)
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[20] != 1 {
		t.Fatalf("bucket counts = %v", s.Buckets)
	}
	wantSum := int64(time.Microsecond + 2*time.Microsecond + 2*time.Microsecond + time.Second)
	if s.SumNs != wantSum {
		t.Fatalf("sum = %d ns, want %d", s.SumNs, wantSum)
	}
	// nil receiver is a no-op, not a panic — instrumentation must never
	// require a nil check at the call site.
	var nilH *Histogram
	nilH.Record(time.Second)
	if nilH.Count() != 0 {
		t.Fatal("nil histogram recorded")
	}
}

// TestHistogramMerge checks merge math is exact per-bucket addition.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(time.Microsecond)
	a.Record(time.Millisecond)
	b.Record(time.Millisecond)
	b.Record(time.Second)

	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d, want 4", m.Count)
	}
	wantSum := int64(time.Microsecond + 2*time.Millisecond + time.Second)
	if m.SumNs != wantSum {
		t.Fatalf("merged sum = %d, want %d", m.SumNs, wantSum)
	}
	for i := range m.Buckets {
		want := a.Snapshot().Buckets[i] + b.Snapshot().Buckets[i]
		if m.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, m.Buckets[i], want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond) // bucket 0, ub 1µs
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond) // bucket 10, ub 1024µs
	}
	if q := h.Snapshot().Quantile(0.5); q != 1e-6 {
		t.Errorf("p50 = %v, want 1e-6", q)
	}
	if q := h.Snapshot().Quantile(0.99); q != 1024e-6 {
		t.Errorf("p99 = %v, want 1024e-6", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}
