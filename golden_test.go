package cleo

// Golden-plan regression corpus: the expected physical plans and exact
// costs for TPC-H 1–22 under the analytical (default) cost model and under
// the default learned models live in testdata/golden/*.json. The tests
// regenerate the corpus in-process and diff it byte-for-byte against the
// committed files, so any change to statistics, costing, exploration,
// enforcement, partition arbitration — or the recurring-job template cache
// — that moves a single plan or cost bit fails loudly. Regenerate with:
//
//	go test -run TestGoldenPlans -update
//
// Costs are recorded as hex float64 literals (strconv 'x'), which
// round-trip bit-exactly; the decimal cost rides along for readability.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden expected files")

// goldenEntry is one (query, resource-awareness) optimization outcome.
type goldenEntry struct {
	Query string `json:"query"`
	// ResourceAware records whether partition exploration ran.
	ResourceAware bool `json:"resource_aware"`
	// Plan is the chosen physical plan with partition counts.
	Plan string `json:"plan"`
	// Cost is the total predicted cost (informational; CostHex is exact).
	Cost float64 `json:"cost"`
	// CostHex is the bit-exact total cost (strconv FormatFloat 'x').
	CostHex string `json:"cost_hex"`
	// OpCostsHex are the bit-exact per-operator costs in post-order.
	OpCostsHex []string `json:"op_costs_hex"`
}

// goldenSystem builds the deterministic TPC-H system the corpus is
// recorded against. With learned=true it additionally collects two
// instances of telemetry per query and trains the default learned models
// (fixed seeds end to end, so the trained predictor is reproducible
// across runs and processes).
func goldenSystem(t testing.TB, learned bool) *System {
	t.Helper()
	sys := NewSystem(SystemConfig{Seed: 3})
	sys.RegisterTPCH(1)
	if !learned {
		return sys
	}
	for n := 1; n <= 22; n++ {
		q, err := TPCHQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 2; seed++ {
			if _, err := sys.Run(q, RunOptions{Seed: seed*100 + int64(n), Param: float64(seed)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// goldenOpts returns the optimization options one corpus entry pins.
func goldenOpts(learned, ra bool) RunOptions {
	return RunOptions{
		Seed: 11, Param: 2,
		UseLearnedModels: learned,
		ResourceAware:    ra,
		SkipLogging:      true,
	}
}

// goldenOptimize renders one corpus entry.
func goldenOptimize(t testing.TB, sys *System, n int, learned, ra bool) goldenEntry {
	t.Helper()
	q, err := TPCHQuery(n)
	if err != nil {
		t.Fatal(err)
	}
	p, cost, err := sys.Optimize(q, goldenOpts(learned, ra))
	if err != nil {
		t.Fatalf("Q%d (learned=%v ra=%v): %v", n, learned, ra, err)
	}
	e := goldenEntry{
		Query:         fmt.Sprintf("Q%d", n),
		ResourceAware: ra,
		Plan:          p.String(),
		Cost:          cost,
		CostHex:       strconv.FormatFloat(cost, 'x', -1, 64),
	}
	p.Walk(func(op *PhysicalPlan) {
		e.OpCostsHex = append(e.OpCostsHex, strconv.FormatFloat(op.ExclusiveCostEst, 'x', -1, 64))
	})
	return e
}

// renderGolden produces the canonical corpus bytes for one coster kind.
func renderGolden(t testing.TB, sys *System, learned bool) []byte {
	t.Helper()
	var entries []goldenEntry
	for n := 1; n <= 22; n++ {
		for _, ra := range []bool{false, true} {
			entries = append(entries, goldenOptimize(t, sys, n, learned, ra))
		}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func goldenPath(learned bool) string {
	name := "tpch_analytical.json"
	if learned {
		name = "tpch_learned.json"
	}
	return filepath.Join("testdata", "golden", name)
}

// TestGoldenPlans regenerates the corpus for both coster kinds and
// requires byte-for-byte equality with the committed files. The fresh
// system warms its template cache during the first render pass, so the
// second render pass runs entirely on template hits — and must produce
// the exact same bytes, pinning the cached-equals-fresh contract over all
// 22 queries and both costers. A third pass on a cache-disabled system
// closes the loop from the other side.
func TestGoldenPlans(t *testing.T) {
	for _, learned := range []bool{false, true} {
		name := "analytical"
		if learned {
			name = "learned"
		}
		t.Run(name, func(t *testing.T) {
			sys := goldenSystem(t, learned)
			fresh := renderGolden(t, sys, learned)

			if *updateGolden {
				path := goldenPath(learned)
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, fresh, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, len(fresh))
			}

			want, err := os.ReadFile(goldenPath(learned))
			if err != nil {
				t.Fatalf("%v (run `go test -run TestGoldenPlans -update` to record)", err)
			}
			if !bytes.Equal(fresh, want) {
				t.Fatalf("fresh optimization diverged from %s; run with -update if the change is intended\n%s",
					goldenPath(learned), goldenDiff(want, fresh))
			}

			// Second pass: every optimization reuses the memo templates the
			// first pass published (one per query × resource-awareness).
			before := sys.TemplateStats()
			cached := renderGolden(t, sys, learned)
			after := sys.TemplateStats()
			if !bytes.Equal(cached, want) {
				t.Fatalf("template-cached optimization diverged from %s\n%s",
					goldenPath(learned), goldenDiff(want, cached))
			}
			if gotHits := after.TemplateHits - before.TemplateHits; gotHits != 44 {
				t.Fatalf("cached pass recorded %d template hits, want 44", gotHits)
			}

			// Cache-disabled control: the corpus does not depend on the
			// template machinery being present at all.
			plain := NewSystem(SystemConfig{Seed: 3, TemplateCacheSize: -1})
			plain.RegisterTPCH(1)
			if learned {
				plain.SetModels(sys.Models())
			}
			if disabled := renderGolden(t, plain, learned); !bytes.Equal(disabled, want) {
				t.Fatalf("cache-disabled optimization diverged from %s\n%s",
					goldenPath(learned), goldenDiff(want, disabled))
			}
		})
	}
}

// goldenDiff reports the first line where two corpus renderings differ.
func goldenDiff(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("first difference at line %d:\nwant: %s\ngot:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(w), len(g))
}
